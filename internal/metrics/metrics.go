// Package metrics is the study pipeline's dependency-free observability
// plane: counters, max-gauges, and bounded histograms with fixed bucket
// edges, collected in per-world registries that merge deterministically.
//
// Two rules keep the plane compatible with the engine's byte-identical
// output contract:
//
//   - Every metric declares a Stability. Stable metrics count only
//     shard-invariant events (client-flow packets, detector attempts,
//     per-home forwarder cache traffic) and appear in the deterministic
//     snapshot that CI diffs across worker counts. Diagnostic metrics
//     (virtual-clock RTTs, NAT occupancy, wall-clock timings) depend on
//     which probes share a world or on the host machine, and are
//     excluded from that snapshot.
//
//   - Histograms take their bucket edges at registration and never
//     resize, so two registries fed the same observations render the
//     same bytes regardless of observation order.
//
// All write paths are atomic read-modify-writes on pre-resolved handles:
// the hot layers look up their Counter/Gauge/Histogram pointers once at
// build time and pay one atomic op per event afterwards. Every handle
// method is nil-receiver-safe, so a disabled plane (nil registry) costs
// a single branch.
package metrics

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
)

// Stability classifies whether a metric is part of the deterministic,
// shard-invariant snapshot (Stable) or may legitimately differ between
// worker counts or machines (Diagnostic).
type Stability int

const (
	// Stable metrics count events that are identical for a given spec
	// regardless of sharding; they are included in deterministic
	// snapshots and golden files.
	Stable Stability = iota
	// Diagnostic metrics depend on shard layout (resolver cache warmth,
	// world population) or wall-clock time; they are reported for
	// humans but excluded from byte-identity checks.
	Diagnostic
)

func (s Stability) String() string {
	if s == Diagnostic {
		return "diagnostic"
	}
	return "stable"
}

// Counter is a monotonically increasing event count. Merging adds.
type Counter struct {
	v atomic.Int64
}

// Inc adds one. Safe on a nil receiver (no-op).
func (c *Counter) Inc() { c.Add(1) }

// Add adds n. Safe on a nil receiver (no-op).
func (c *Counter) Add(n int64) {
	if c == nil {
		return
	}
	c.v.Add(n)
}

// Value returns the current count (0 for a nil receiver).
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge records the maximum value observed (a high-water mark: NAT
// table occupancy, peak shard wall-clock). Merging takes the max, which
// keeps merges commutative — a last-write-wins gauge would depend on
// merge order and break snapshot determinism.
type Gauge struct {
	v atomic.Int64
}

// Observe raises the gauge to v if v is larger. Safe on a nil receiver.
func (g *Gauge) Observe(v int64) {
	if g == nil {
		return
	}
	for {
		cur := g.v.Load()
		if v <= cur {
			return
		}
		if g.v.CompareAndSwap(cur, v) {
			return
		}
	}
}

// Value returns the high-water mark (0 for a nil receiver).
func (g *Gauge) Value() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

// Histogram is a bounded histogram over fixed, registration-time bucket
// edges. An observation v lands in the first bucket with v <= edge, or
// the overflow bucket past the last edge. Merging adds bucket-wise;
// registries must agree on edges (enforced by Registry.Histogram).
type Histogram struct {
	edges   []int64
	buckets []atomic.Int64 // len(edges)+1; last is overflow
	count   atomic.Int64
	sum     atomic.Int64
}

// Observe records one sample. Safe on a nil receiver (no-op).
func (h *Histogram) Observe(v int64) {
	if h == nil {
		return
	}
	i := 0
	for i < len(h.edges) && v > h.edges[i] {
		i++
	}
	h.buckets[i].Add(1)
	h.count.Add(1)
	h.sum.Add(v)
}

// Count returns the number of samples (0 for a nil receiver).
func (h *Histogram) Count() int64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Sum returns the sum of all samples (0 for a nil receiver).
func (h *Histogram) Sum() int64 {
	if h == nil {
		return 0
	}
	return h.sum.Load()
}

// Buckets returns a copy of the per-bucket counts (nil for a nil
// receiver). The last entry is the overflow bucket.
func (h *Histogram) Buckets() []int64 {
	if h == nil {
		return nil
	}
	out := make([]int64, len(h.buckets))
	for i := range h.buckets {
		out[i] = h.buckets[i].Load()
	}
	return out
}

// Edges returns the bucket edges (shared, not copied — callers must not
// mutate).
func (h *Histogram) Edges() []int64 {
	if h == nil {
		return nil
	}
	return h.edges
}

// Registry holds one world's (or shard's) metrics. Registration is
// idempotent by name; re-registering returns the existing handle.
// A nil *Registry is a valid disabled plane: every lookup returns a nil
// handle whose methods are no-ops.
type Registry struct {
	mu        sync.Mutex
	counters  map[string]*Counter
	gauges    map[string]*Gauge
	hists     map[string]*Histogram
	stability map[string]Stability
}

// New returns an empty registry.
func New() *Registry {
	return &Registry{
		counters:  make(map[string]*Counter),
		gauges:    make(map[string]*Gauge),
		hists:     make(map[string]*Histogram),
		stability: make(map[string]Stability),
	}
}

// checkName panics on a cross-kind collision; metric names are
// programmer-chosen constants, so a clash is a bug, not input.
func (r *Registry) checkName(name, kind string) {
	if _, ok := r.counters[name]; ok && kind != "counter" {
		panic(fmt.Sprintf("metrics: %q already registered as counter", name))
	}
	if _, ok := r.gauges[name]; ok && kind != "gauge" {
		panic(fmt.Sprintf("metrics: %q already registered as gauge", name))
	}
	if _, ok := r.hists[name]; ok && kind != "histogram" {
		panic(fmt.Sprintf("metrics: %q already registered as histogram", name))
	}
}

// Counter returns the named counter, creating it on first use. Returns
// nil (a no-op handle) on a nil registry.
func (r *Registry) Counter(name string, s Stability) *Counter {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	r.checkName(name, "counter")
	c, ok := r.counters[name]
	if !ok {
		c = &Counter{}
		r.counters[name] = c
		r.stability[name] = s
	}
	return c
}

// Gauge returns the named max-gauge, creating it on first use. Returns
// nil (a no-op handle) on a nil registry.
func (r *Registry) Gauge(name string, s Stability) *Gauge {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	r.checkName(name, "gauge")
	g, ok := r.gauges[name]
	if !ok {
		g = &Gauge{}
		r.gauges[name] = g
		r.stability[name] = s
	}
	return g
}

// Histogram returns the named histogram, creating it with the given
// bucket edges on first use. Edges must be strictly increasing, and a
// re-registration must pass identical edges (determinism depends on
// every shard bucketing the same way). Returns nil on a nil registry.
func (r *Registry) Histogram(name string, s Stability, edges []int64) *Histogram {
	if r == nil {
		return nil
	}
	for i := 1; i < len(edges); i++ {
		if edges[i] <= edges[i-1] {
			panic(fmt.Sprintf("metrics: %q edges not strictly increasing", name))
		}
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	r.checkName(name, "histogram")
	h, ok := r.hists[name]
	if ok {
		if !sameEdges(h.edges, edges) {
			panic(fmt.Sprintf("metrics: %q re-registered with different edges", name))
		}
		return h
	}
	h = &Histogram{
		edges:   append([]int64(nil), edges...),
		buckets: make([]atomic.Int64, len(edges)+1),
	}
	r.hists[name] = h
	r.stability[name] = s
	return h
}

func sameEdges(a, b []int64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// Merge folds other's metrics into r: counters add, gauges take the
// max, histograms add bucket-wise. Metrics unknown to r are created
// with other's stability. All three operations are commutative and
// associative, so merging shard registries in any order yields the same
// snapshot — the engine still merges in shard order for clarity.
func (r *Registry) Merge(other *Registry) {
	if r == nil || other == nil {
		return
	}
	other.mu.Lock()
	names := make([]string, 0, len(other.stability))
	for name := range other.stability {
		names = append(names, name)
	}
	sort.Strings(names)
	type pending struct {
		name string
		kind string
		s    Stability
		c    *Counter
		g    *Gauge
		h    *Histogram
	}
	src := make([]pending, 0, len(names))
	for _, name := range names {
		p := pending{name: name, s: other.stability[name]}
		switch {
		case other.counters[name] != nil:
			p.kind, p.c = "counter", other.counters[name]
		case other.gauges[name] != nil:
			p.kind, p.g = "gauge", other.gauges[name]
		case other.hists[name] != nil:
			p.kind, p.h = "histogram", other.hists[name]
		}
		src = append(src, p)
	}
	other.mu.Unlock()

	for _, p := range src {
		switch p.kind {
		case "counter":
			r.Counter(p.name, p.s).Add(p.c.Value())
		case "gauge":
			r.Gauge(p.name, p.s).Observe(p.g.Value())
		case "histogram":
			dst := r.Histogram(p.name, p.s, p.h.edges)
			for i, n := range p.h.Buckets() {
				dst.buckets[i].Add(n)
			}
			dst.count.Add(p.h.Count())
			dst.sum.Add(p.h.Sum())
		}
	}
}
