package metrics

import (
	"strings"
	"sync"
	"testing"
)

func TestNilSafety(t *testing.T) {
	var reg *Registry
	c := reg.Counter("x", Stable)
	g := reg.Gauge("y", Stable)
	h := reg.Histogram("z", Stable, []int64{1, 2})
	c.Inc()
	c.Add(5)
	g.Observe(7)
	h.Observe(3)
	if c.Value() != 0 || g.Value() != 0 || h.Count() != 0 || h.Sum() != 0 {
		t.Errorf("nil handles must read zero: c=%d g=%d h=%d/%d",
			c.Value(), g.Value(), h.Count(), h.Sum())
	}
	if h.Buckets() != nil || h.Edges() != nil {
		t.Error("nil histogram must expose nil buckets/edges")
	}
	if snap := reg.Snapshot(true); len(snap.Metrics) != 0 {
		t.Errorf("nil registry snapshot has %d metrics", len(snap.Metrics))
	}
	reg.Merge(New()) // must not panic
}

func TestCounterGaugeBasics(t *testing.T) {
	reg := New()
	c := reg.Counter("a.count", Stable)
	c.Inc()
	c.Add(4)
	if got := c.Value(); got != 5 {
		t.Errorf("counter = %d, want 5", got)
	}
	if again := reg.Counter("a.count", Stable); again != c {
		t.Error("re-registration must return the same handle")
	}
	g := reg.Gauge("a.peak", Diagnostic)
	g.Observe(3)
	g.Observe(9)
	g.Observe(6)
	if got := g.Value(); got != 9 {
		t.Errorf("gauge = %d, want the max 9", got)
	}
}

func TestHistogramBucketing(t *testing.T) {
	reg := New()
	h := reg.Histogram("h", Stable, []int64{1, 5, 10})
	for _, v := range []int64{0, 1, 2, 5, 6, 10, 11, 100} {
		h.Observe(v)
	}
	want := []int64{2, 2, 2, 2} // (-inf,1], (1,5], (5,10], (10,inf)
	got := h.Buckets()
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("buckets = %v, want %v", got, want)
		}
	}
	if h.Count() != 8 || h.Sum() != 135 {
		t.Errorf("count=%d sum=%d, want 8/135", h.Count(), h.Sum())
	}
}

func TestHistogramEdgeMismatchPanics(t *testing.T) {
	reg := New()
	reg.Histogram("h", Stable, []int64{1, 2})
	defer func() {
		if recover() == nil {
			t.Error("re-registering with different edges must panic")
		}
	}()
	reg.Histogram("h", Stable, []int64{1, 3})
}

func TestKindCollisionPanics(t *testing.T) {
	reg := New()
	reg.Counter("m", Stable)
	defer func() {
		if recover() == nil {
			t.Error("registering a gauge over a counter must panic")
		}
	}()
	reg.Gauge("m", Stable)
}

// TestMergeCommutative checks the determinism foundation: merging shard
// registries in any order yields identical snapshots.
func TestMergeCommutative(t *testing.T) {
	build := func(seed int64) *Registry {
		r := New()
		r.Counter("c", Stable).Add(seed)
		r.Gauge("g", Stable).Observe(seed * 3)
		h := r.Histogram("h", Stable, []int64{10, 100})
		h.Observe(seed)
		h.Observe(seed * 7)
		return r
	}
	a, b, c := build(2), build(5), build(11)

	fwd := New()
	fwd.Merge(a)
	fwd.Merge(b)
	fwd.Merge(c)
	rev := New()
	rev.Merge(c)
	rev.Merge(b)
	rev.Merge(a)

	j1, j2 := fwd.Snapshot(true).JSON(), rev.Snapshot(true).JSON()
	if string(j1) != string(j2) {
		t.Errorf("merge order changed the snapshot:\n%s\nvs\n%s", j1, j2)
	}
	if got := fwd.Counter("c", Stable).Value(); got != 18 {
		t.Errorf("merged counter = %d, want 18", got)
	}
	if got := fwd.Gauge("g", Stable).Value(); got != 33 {
		t.Errorf("merged gauge = %d, want max 33", got)
	}
	if got := fwd.Histogram("h", Stable, []int64{10, 100}).Count(); got != 6 {
		t.Errorf("merged histogram count = %d, want 6", got)
	}
}

func TestSnapshotStabilityFilter(t *testing.T) {
	reg := New()
	reg.Counter("keep", Stable).Inc()
	reg.Gauge("drop", Diagnostic).Observe(1)

	stable := reg.Snapshot(false)
	if len(stable.Metrics) != 1 || stable.Metrics[0].Name != "keep" {
		t.Errorf("stable snapshot = %+v, want only 'keep'", stable.Metrics)
	}
	full := reg.Snapshot(true)
	if len(full.Metrics) != 2 {
		t.Errorf("full snapshot has %d metrics, want 2", len(full.Metrics))
	}
	text := full.Text()
	if !strings.Contains(text, "(diagnostic)") {
		t.Errorf("text rendering must flag diagnostic metrics:\n%s", text)
	}
}

func TestSnapshotDeterministicBytes(t *testing.T) {
	build := func() *Registry {
		r := New()
		// Register in different orders; names must still sort.
		r.Histogram("b.h", Stable, []int64{1}).Observe(2)
		r.Counter("a.c", Stable).Add(3)
		r.Gauge("c.g", Diagnostic).Observe(4)
		return r
	}
	r1 := build()
	r2 := New()
	r2.Gauge("c.g", Diagnostic).Observe(4)
	r2.Counter("a.c", Stable).Add(3)
	r2.Histogram("b.h", Stable, []int64{1}).Observe(2)
	if string(r1.Snapshot(true).JSON()) != string(r2.Snapshot(true).JSON()) {
		t.Error("registration order leaked into snapshot bytes")
	}
}

// TestConcurrentWrites exercises the atomic paths under the race
// detector.
func TestConcurrentWrites(t *testing.T) {
	reg := New()
	c := reg.Counter("c", Stable)
	g := reg.Gauge("g", Stable)
	h := reg.Histogram("h", Stable, []int64{50})
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				c.Inc()
				g.Observe(int64(w*1000 + i))
				h.Observe(int64(i % 100))
			}
		}(w)
	}
	wg.Wait()
	if c.Value() != 8000 || h.Count() != 8000 {
		t.Errorf("lost updates: counter=%d hist=%d, want 8000", c.Value(), h.Count())
	}
	if g.Value() != 7999 {
		t.Errorf("gauge = %d, want 7999", g.Value())
	}
}
