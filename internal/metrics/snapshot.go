package metrics

import (
	"bytes"
	"encoding/json"
	"fmt"
	"sort"
)

// Metric is one rendered entry of a Snapshot.
type Metric struct {
	Name       string  `json:"name"`
	Kind       string  `json:"kind"` // "counter" | "gauge" | "histogram"
	Diagnostic bool    `json:"diagnostic,omitempty"`
	Value      int64   `json:"value"`             // counter/gauge value; histogram sample count
	Sum        int64   `json:"sum,omitempty"`     // histogram only
	Edges      []int64 `json:"edges,omitempty"`   // histogram only
	Buckets    []int64 `json:"buckets,omitempty"` // histogram only; last entry is overflow
}

// Snapshot is a point-in-time, name-sorted rendering of a registry.
// Rendering is deterministic: identical registries produce identical
// bytes from both Text and JSON.
type Snapshot struct {
	Metrics []Metric `json:"metrics"`
}

// Snapshot renders the registry. With includeDiagnostic false, only
// Stable metrics appear — that restricted form is the one CI diffs
// across worker counts and golden tests commit, so it must stay
// byte-identical for a given spec. A nil registry yields an empty
// snapshot.
func (r *Registry) Snapshot(includeDiagnostic bool) *Snapshot {
	snap := &Snapshot{}
	if r == nil {
		return snap
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	names := make([]string, 0, len(r.stability))
	for name := range r.stability {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		s := r.stability[name]
		if s == Diagnostic && !includeDiagnostic {
			continue
		}
		m := Metric{Name: name, Diagnostic: s == Diagnostic}
		switch {
		case r.counters[name] != nil:
			m.Kind = "counter"
			m.Value = r.counters[name].Value()
		case r.gauges[name] != nil:
			m.Kind = "gauge"
			m.Value = r.gauges[name].Value()
		case r.hists[name] != nil:
			h := r.hists[name]
			m.Kind = "histogram"
			m.Value = h.Count()
			m.Sum = h.Sum()
			m.Edges = h.Edges()
			m.Buckets = h.Buckets()
		}
		snap.Metrics = append(snap.Metrics, m)
	}
	return snap
}

// AddSnapshot folds a previously captured snapshot back into the
// registry: counters add, gauges max, histogram buckets add — the same
// commutative operations Merge uses, so restoring a checkpointed
// snapshot and then counting a run's remaining events lands on exactly
// the totals an uninterrupted run would have counted. Metrics unknown
// to the registry are created with the snapshot's recorded kind,
// stability, and (for histograms) bucket edges. No-op on a nil registry
// or snapshot.
func (r *Registry) AddSnapshot(s *Snapshot) {
	if r == nil || s == nil {
		return
	}
	for _, m := range s.Metrics {
		stab := Stable
		if m.Diagnostic {
			stab = Diagnostic
		}
		switch m.Kind {
		case "counter":
			r.Counter(m.Name, stab).Add(m.Value)
		case "gauge":
			r.Gauge(m.Name, stab).Observe(m.Value)
		case "histogram":
			h := r.Histogram(m.Name, stab, m.Edges)
			for i, n := range m.Buckets {
				if i < len(h.buckets) {
					h.buckets[i].Add(n)
				}
			}
			h.count.Add(m.Value)
			h.sum.Add(m.Sum)
		}
	}
}

// JSON renders the snapshot as indented JSON with a trailing newline,
// suitable for writing to a file and diffing.
func (s *Snapshot) JSON() []byte {
	b, err := json.MarshalIndent(s, "", "  ")
	if err != nil { // unreachable: Snapshot has no unmarshalable fields
		panic(err)
	}
	return append(b, '\n')
}

// Text renders the snapshot as aligned human-readable lines:
//
//	core.attempts                 counter      11234
//	core.rtt_ms                   histogram    count=9876 sum=45210 buckets=[...(le edges)...]
//
// Diagnostic metrics are suffixed with "(diagnostic)".
func (s *Snapshot) Text() string {
	var buf bytes.Buffer
	width := 0
	for _, m := range s.Metrics {
		if len(m.Name) > width {
			width = len(m.Name)
		}
	}
	for _, m := range s.Metrics {
		fmt.Fprintf(&buf, "%-*s  %-9s  ", width, m.Name, m.Kind)
		if m.Kind == "histogram" {
			fmt.Fprintf(&buf, "count=%d sum=%d buckets=[", m.Value, m.Sum)
			for i, n := range m.Buckets {
				if i > 0 {
					buf.WriteByte(' ')
				}
				if i < len(m.Edges) {
					fmt.Fprintf(&buf, "le%d:%d", m.Edges[i], n)
				} else {
					fmt.Fprintf(&buf, "inf:%d", n)
				}
			}
			buf.WriteByte(']')
		} else {
			fmt.Fprintf(&buf, "%d", m.Value)
		}
		if m.Diagnostic {
			buf.WriteString("  (diagnostic)")
		}
		buf.WriteByte('\n')
	}
	return buf.String()
}
