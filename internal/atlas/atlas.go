// Package atlas models a RIPE-Atlas-like measurement platform: a
// population of probe hosts scattered across countries and ISPs, with
// platform metadata (each probe's public address, AS, country) and an
// availability model — probes go offline, so each experiment reaches
// only most of the fleet, which is why the paper's Table 4 shows a
// different "Total" per resolver.
package atlas

import (
	"math/rand"
	"net/netip"
	"sort"

	"github.com/dnswatch/dnsloc/internal/core"
	"github.com/dnswatch/dnsloc/internal/netsim"
	"github.com/dnswatch/dnsloc/internal/publicdns"
)

// Availability classifies a probe's platform reachability for the whole
// measurement campaign.
type Availability int

// Availability classes.
const (
	// Full probes respond to every experiment.
	Full Availability = iota
	// Partial probes respond to each experiment independently with
	// PartialRespondP probability (flaky connectivity).
	Partial
	// Dead probes never respond.
	Dead
)

// GroundTruth records what the world builder actually installed for a
// probe — the hidden variable the measurement technique estimates.
type GroundTruth struct {
	// Location is the true interceptor location: "none", "cpe", "isp",
	// "isp-hidden" (in-AS but drops bogons), or "transit".
	Location string
	// PatternV4/V6 are the truly intercepted resolver sets.
	PatternV4 []publicdns.ID
	PatternV6 []publicdns.ID
	// Persona is the interceptor's version.bind string, if any.
	Persona string
	// RefusedV4 lists resolvers whose queries the interceptor blocks
	// rather than resolves.
	RefusedV4 []publicdns.ID
}

// Intercepted reports whether the probe is truly intercepted.
func (g GroundTruth) Intercepted() bool {
	return g.Location != "" && g.Location != "none"
}

// Probe is one vantage point.
type Probe struct {
	ID      int
	Country string
	ASN     int
	Org     string
	Region  publicdns.Region

	// HasIPv6 reports whether the probe's home has routed v6.
	HasIPv6 bool

	// WANv4 is the probe's public address — platform metadata, exactly
	// what Atlas exposes and what the CPE test (§3.2) needs.
	WANv4 netip.Addr

	// Host is the simulated device.
	Host *netsim.Host

	Availability Availability
	Truth        GroundTruth

	// EncTransport is the probe's stub-resolver transport configuration:
	// TransportDo53 (the default) or one of the encrypted modes when the
	// adoption model upgraded this probe.
	EncTransport core.TransportMode
}

// Platform is the probe fleet plus the availability model.
type Platform struct {
	// PartialRespondP is the per-experiment response probability of
	// Partial probes.
	PartialRespondP float64

	// Retry, when non-nil, is installed on every detector the platform
	// builds — the study engine sets it when running against a faulted
	// network.
	Retry *core.RetryPolicy

	// Metrics, when non-nil, is installed on every detector the
	// platform builds, so all probes in a world share one registry.
	Metrics *core.MetricSet

	// CertOracle, when non-nil, supplies a per-probe certificate-
	// consistency oracle; built detectors get it as their CertOracle.
	CertOracle func(*Probe) core.CertOracle

	// DriftRounds is installed on every built detector: extra
	// location-enumeration rounds feeding the drift signal.
	DriftRounds int

	// EncryptedUpgrade selects which query targets a transport-upgraded
	// probe reaches over DoT/DoH — typically the public operators' known
	// anycast addresses, leaving the CPE and bogon steps on cleartext as
	// real stubs do. Nil upgrades every target.
	EncryptedUpgrade func(netip.Addr) bool

	probes []*Probe
	rng    *rand.Rand
	net    *netsim.Network
}

// NewPlatform creates an empty platform over a network with a seeded
// availability RNG.
func NewPlatform(net *netsim.Network, seed int64) *Platform {
	return &Platform{
		PartialRespondP: 0.75,
		rng:             rand.New(rand.NewSource(seed)),
		net:             net,
	}
}

// Add registers a probe.
func (p *Platform) Add(probe *Probe) { p.probes = append(p.probes, probe) }

// Probes returns the fleet sorted by ID.
func (p *Platform) Probes() []*Probe {
	out := append([]*Probe(nil), p.probes...)
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// Len returns the fleet size.
func (p *Platform) Len() int { return len(p.probes) }

// Responds samples whether a probe answers one experiment's measurement
// request. Deterministic given the platform seed and call order.
func (p *Platform) Responds(probe *Probe) bool {
	switch probe.Availability {
	case Full:
		return true
	case Partial:
		return p.rng.Float64() < p.PartialRespondP
	default:
		return false
	}
}

// AvailabilityTable is a pre-drawn availability stream: for each probe
// ID, the outcomes of its Responds calls in draw order.
type AvailabilityTable map[int][]bool

// PredrawResponses replays the campaign's whole availability stream
// serially, in probe-ID order, before any measurement runs. draws tells
// it how many Responds samples each probe consumes (zero to skip the
// probe entirely, exactly as a serial campaign would).
//
// Because Responds is the platform RNG's only consumer, a table drawn
// here is byte-identical to the stream an interleaved serial run would
// have sampled — which is what lets a sharded engine run probes
// concurrently yet reproduce the serial run's per-experiment totals:
// every shard replays the same full stream over the same fleet roster
// and reads off only its own probes' rows.
func (p *Platform) PredrawResponses(draws func(*Probe) int) AvailabilityTable {
	table := make(AvailabilityTable, len(p.probes))
	for _, probe := range p.Probes() {
		n := draws(probe)
		if n == 0 {
			continue
		}
		row := make([]bool, n)
		for i := range row {
			row[i] = p.Responds(probe)
		}
		table[probe.ID] = row
	}
	return table
}

// Client builds the detector transport for a probe: a plain SimClient
// for Do53 probes, an EncryptedClient for transport-upgraded ones.
func (p *Platform) Client(probe *Probe) core.Client {
	sim := &core.SimClient{Net: p.net, Host: probe.Host}
	if !probe.EncTransport.Encrypted() {
		return sim
	}
	return &core.EncryptedClient{
		Sim:     sim,
		Mode:    probe.EncTransport,
		Upgrade: p.EncryptedUpgrade,
	}
}

// Detector builds a ready detector for a probe, configured with the
// platform's metadata about it.
func (p *Platform) Detector(probe *Probe) *core.Detector {
	d := &core.Detector{
		Client:      p.Client(probe),
		CPEPublicV4: probe.WANv4,
		QueryV6:     probe.HasIPv6,
		Retry:       p.Retry,
		Metrics:     p.Metrics,
		DriftRounds: p.DriftRounds,
	}
	if p.CertOracle != nil {
		d.CertOracle = p.CertOracle(probe)
	}
	return d
}
