package atlas

import (
	"net/netip"
	"testing"

	"github.com/dnswatch/dnsloc/internal/netsim"
	"github.com/dnswatch/dnsloc/internal/publicdns"
)

func newProbe(id int, avail Availability) *Probe {
	return &Probe{
		ID: id, Country: "US", ASN: 7922, Org: "Comcast",
		Region:       publicdns.RegionNA,
		WANv4:        netip.MustParseAddr("96.120.1.1"),
		Availability: avail,
	}
}

func TestProbesSortedByID(t *testing.T) {
	p := NewPlatform(netsim.NewNetwork(), 1)
	p.Add(newProbe(30, Full))
	p.Add(newProbe(10, Full))
	p.Add(newProbe(20, Full))
	ids := []int{}
	for _, probe := range p.Probes() {
		ids = append(ids, probe.ID)
	}
	if ids[0] != 10 || ids[1] != 20 || ids[2] != 30 {
		t.Errorf("ids = %v", ids)
	}
	if p.Len() != 3 {
		t.Errorf("Len = %d", p.Len())
	}
}

func TestAvailabilityModel(t *testing.T) {
	p := NewPlatform(netsim.NewNetwork(), 42)
	full := newProbe(1, Full)
	dead := newProbe(2, Dead)
	partial := newProbe(3, Partial)
	for i := 0; i < 100; i++ {
		if !p.Responds(full) {
			t.Fatal("full probe failed to respond")
		}
		if p.Responds(dead) {
			t.Fatal("dead probe responded")
		}
	}
	hits := 0
	for i := 0; i < 1000; i++ {
		if p.Responds(partial) {
			hits++
		}
	}
	// PartialRespondP defaults to 0.75.
	if hits < 650 || hits > 850 {
		t.Errorf("partial probe responded %d/1000, want ~750", hits)
	}
}

func TestAvailabilityDeterministicPerSeed(t *testing.T) {
	sample := func(seed int64) []bool {
		p := NewPlatform(netsim.NewNetwork(), seed)
		probe := newProbe(1, Partial)
		out := make([]bool, 50)
		for i := range out {
			out[i] = p.Responds(probe)
		}
		return out
	}
	a, b := sample(7), sample(7)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed diverged at %d", i)
		}
	}
	c := sample(8)
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
		}
	}
	if same {
		t.Error("different seeds produced identical sequences")
	}
}

func TestGroundTruthIntercepted(t *testing.T) {
	cases := map[string]bool{
		"":           false,
		"none":       false,
		"cpe":        true,
		"isp":        true,
		"isp-hidden": true,
		"transit":    true,
	}
	for loc, want := range cases {
		g := GroundTruth{Location: loc}
		if g.Intercepted() != want {
			t.Errorf("Intercepted(%q) = %t, want %t", loc, g.Intercepted(), want)
		}
	}
}

func TestDetectorConfiguredFromMetadata(t *testing.T) {
	p := NewPlatform(netsim.NewNetwork(), 1)
	probe := newProbe(1, Full)
	probe.HasIPv6 = true
	probe.Host = netsim.NewHost("h", netip.MustParseAddr("192.168.1.2"), netip.Addr{}, nil)
	p.Add(probe)
	det := p.Detector(probe)
	if det.CPEPublicV4 != probe.WANv4 {
		t.Errorf("detector CPE addr = %s", det.CPEPublicV4)
	}
	if !det.QueryV6 {
		t.Error("detector ignores probe v6 capability")
	}
	if det.Client == nil {
		t.Error("detector has no transport")
	}
}
