package dnsserver

import (
	"net/netip"
	"testing"

	"github.com/dnswatch/dnsloc/internal/dnssec"
	"github.com/dnswatch/dnsloc/internal/dnswire"
	"github.com/dnswatch/dnsloc/internal/netsim"
)

// signedWorld extends the mini DNS tree with signatures on the
// example.com zone and a DS record in com.
func signedWorld(t *testing.T) (*dnsWorld, *dnssec.Key) {
	t.Helper()
	w := buildDNSWorld(t)
	key := dnssec.GenerateKey("example.com", "zone-test")
	// Rebuild the auth with a signed zone: easiest is signing the zone
	// in place (records were added by buildDNSWorld).
	if err := w.authZone.Sign(key); err != nil {
		t.Fatal(err)
	}
	return w, key
}

// askRaw exchanges a prepared message through the world's client.
func askRaw(t *testing.T, w *dnsWorld, server string, m *dnswire.Message) *dnswire.Message {
	t.Helper()
	resps, err := w.client.Exchange(w.net, ap(server), dnswire.MustPack(m), netsim.ExchangeOptions{})
	if err != nil {
		t.Fatalf("exchange: %v", err)
	}
	out, err := dnswire.Unpack(resps[0].Payload)
	if err != nil {
		t.Fatal(err)
	}
	return out
}

func TestSignedZoneServesRRSIGsWithDO(t *testing.T) {
	w, key := signedWorld(t)
	q := dnswire.NewQuery(51, "www.example.com", dnswire.TypeA, dnswire.ClassINET)
	q.SetEDNS(4096, true)
	m := askRaw(t, w, "192.0.2.2:53", q)
	var sig *dnswire.RRSIGRData
	var answers []dnswire.Record
	for _, rr := range m.Answers {
		if s, ok := rr.Data.(dnswire.RRSIGRData); ok {
			sig = &s
		} else {
			answers = append(answers, rr)
		}
	}
	if sig == nil {
		t.Fatalf("no RRSIG in DO answer: %s", m)
	}
	if err := dnssec.VerifyRRset(answers, *sig, []dnswire.DNSKEYRData{key.Public}); err != nil {
		t.Fatalf("served signature does not verify: %v", err)
	}
}

func TestSignedZoneOmitsRRSIGsWithoutDO(t *testing.T) {
	w, _ := signedWorld(t)
	q := dnswire.NewQuery(52, "www.example.com", dnswire.TypeA, dnswire.ClassINET)
	m := askRaw(t, w, "192.0.2.2:53", q)
	for _, rr := range m.Answers {
		if rr.Type() == dnswire.TypeRRSIG {
			t.Fatalf("RRSIG served without DO: %s", m)
		}
	}
}

func TestDNSKEYServedAtOrigin(t *testing.T) {
	w, key := signedWorld(t)
	q := dnswire.NewQuery(53, "example.com", dnswire.TypeDNSKEY, dnswire.ClassINET)
	q.SetEDNS(4096, true)
	m := askRaw(t, w, "192.0.2.2:53", q)
	var found bool
	for _, rr := range m.Answers {
		if k, ok := rr.Data.(dnswire.DNSKEYRData); ok && k.KeyTag() == key.Public.KeyTag() {
			found = true
		}
	}
	if !found {
		t.Fatalf("DNSKEY missing: %s", m)
	}
}

func TestDSAtCutAnsweredByParent(t *testing.T) {
	// The com TLD in buildDNSWorld delegates example.com. Add a DS for
	// the cut and ask the *parent*: it must answer, not refer.
	w := buildDNSWorld(t)
	key := dnssec.GenerateKey("example.com", "ds-test")

	comZone := NewZone("com")
	comZone.Delegate("example.com", map[dnswire.Name][]netip.Addr{
		"ns1.example.com": {addr("192.0.2.2")},
	})
	comZone.MustAdd(key.DSRecord(3600))
	comRtr := netsim.NewRouter("com-tld2", addr("192.5.7.30"))
	comRtr.Bind(53, NewAuthServer(comZone))
	comRtr.AddDefaultRoute(w.backbone)
	w.backbone.AddRoute(pfx("192.5.7.0/24"), comRtr)

	q := dnswire.NewQuery(54, "example.com", dnswire.TypeDS, dnswire.ClassINET)
	m := askRaw(t, w, "192.5.7.30:53", q)
	if len(m.Answers) != 1 {
		t.Fatalf("DS at cut: %s", m)
	}
	if _, ok := m.Answers[0].Data.(dnswire.DSRData); !ok {
		t.Fatalf("answer is not DS: %s", m.Answers[0])
	}
	// An A query for the cut still refers.
	qa := dnswire.NewQuery(55, "example.com", dnswire.TypeA, dnswire.ClassINET)
	ma := askRaw(t, w, "192.5.7.30:53", qa)
	if len(ma.Answers) != 0 || len(ma.Authority) == 0 {
		t.Fatalf("A at cut should refer: %s", ma)
	}
}
