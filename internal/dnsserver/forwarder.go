package dnsserver

import (
	"encoding/binary"
	"net/netip"
	"time"

	"github.com/dnswatch/dnsloc/internal/dnswire"
	"github.com/dnswatch/dnsloc/internal/netsim"
)

// Forwarder is a dnsmasq-style DNS forwarder: the software that runs on
// nearly all CPE (Table 5 of the paper). It answers CHAOS debugging
// queries itself — the behavior the localization technique depends on —
// and relays everything else to a pre-configured upstream resolver.
type Forwarder struct {
	// Persona answers version.bind and friends. The persona string is
	// the fingerprint the detector compares (§3.2).
	Persona ChaosPersona

	// ForwardUnhandledChaos forwards CHAOS debugging queries the persona
	// does not implement upstream instead of answering NOTIMP. A CPE
	// configured this way while not intercepting is the §6
	// misclassification case.
	ForwardUnhandledChaos bool

	// Upstream is the resolver queries are relayed to — for an XDNS-style
	// CPE, the ISP resolver.
	Upstream netip.AddrPort

	// Egress is the source address of upstream queries (the CPE WAN
	// address).
	Egress netip.Addr

	// NoCache disables the answer cache; dnsmasq caches by default.
	NoCache bool

	// Metrics, when non-nil, receives query/cache counters. The set is
	// shared by every forwarder in a world (see ForwarderMetrics).
	Metrics *ForwarderMetrics

	// ChaosCache, when non-nil, serves persona answers from pre-packed
	// bytes (ID patched per query). Shared by every CPE of a world —
	// thousands of probes ask the same version.bind questions.
	ChaosCache *PackedAnswerCache

	// Adversary, when non-nil and active, evades CHAOS fingerprinting on
	// diverted flows instead of answering with the honest persona.
	Adversary *Adversary

	pending  map[uint16]fwdPending
	cache    map[fwdCacheKey]fwdCacheEntry
	nextPort uint16
}

type fwdPending struct {
	clientPkt netsim.Packet
	clientID  uint16
	q         dnswire.Question
}

type fwdCacheKey struct {
	name  dnswire.Name
	typ   dnswire.Type
	class dnswire.Class
}

type fwdCacheEntry struct {
	// wire is the upstream answer's packed bytes, owned by the entry;
	// hits are served by copying into a recycled buffer and patching the
	// ID — no re-pack.
	wire    []byte
	expires time.Duration
}

// NewForwarder creates a forwarder relaying to upstream from egress.
func NewForwarder(persona ChaosPersona, egress netip.Addr, upstream netip.AddrPort) *Forwarder {
	return &Forwarder{
		Persona:  persona,
		Upstream: upstream,
		Egress:   egress,
		pending:  make(map[uint16]fwdPending),
		cache:    make(map[fwdCacheKey]fwdCacheEntry),
		nextPort: 20000,
	}
}

// ServeUDP implements netsim.Service.
func (f *Forwarder) ServeUDP(sc *netsim.ServiceCtx, pkt netsim.Packet) {
	// Anything not addressed to port 53 is an upstream response — unless
	// Enc marks it as a client query a stream endpoint unwrapped and
	// handed over with its original encrypted-port destination (which
	// keeps conntrack reply-spoofing intact). Upstream responses always
	// carry Enc zero: the forwarder's own queries go out in the clear.
	if pkt.Dst.Port() != 53 && pkt.Enc == 0 {
		f.handleUpstream(sc, pkt)
		return
	}
	query, err := dnswire.Unpack(pkt.Payload)
	if err != nil || query.Header.Response || len(query.Questions) == 0 {
		return
	}
	f.Metrics.query()
	q := query.Question()
	if !f.Adversary.AllowBogon(pkt, f.Egress) {
		return
	}
	isChaosDebug := q.Class == dnswire.ClassCHAOS && q.Type == dnswire.TypeTXT && IsChaosDebugName(q.Name)
	if isChaosDebug {
		if resp, drop := f.Adversary.ChaosAnswer(query, pkt, f.Egress); drop {
			return
		} else if resp != nil {
			f.Metrics.chaosLocal()
			f.reply(sc, pkt, resp)
			return
		}
		answersLocally := (IsVersionQuery(q.Name) && f.Persona.Version != "") ||
			(IsIdentityQuery(q.Name) && f.Persona.Identity != "")
		if answersLocally || !f.ForwardUnhandledChaos {
			if wire := f.ChaosCache.Serve(sc, f.Persona, query); wire != nil {
				f.Metrics.chaosLocal()
				sc.Reply(pkt, wire)
				return
			}
			if resp := f.Persona.Answer(query); resp != nil {
				f.Metrics.chaosLocal()
				f.reply(sc, pkt, resp)
				return
			}
		}
		// Fall through: forward the debugging query upstream.
	}
	// dnsmasq-style cache: repeated LAN lookups are answered locally.
	if !f.NoCache && q.Class == dnswire.ClassINET {
		key := fwdCacheKey{name: q.Name.Canonical(), typ: q.Type, class: q.Class}
		if e, ok := f.cache[key]; ok {
			if e.expires > sc.Now() {
				f.Metrics.cacheHit()
				buf := append(sc.PayloadBuf(), e.wire...)
				binary.BigEndian.PutUint16(buf[0:2], query.Header.ID)
				sc.Reply(pkt, buf)
				return
			}
			delete(f.cache, key)
		}
		f.Metrics.cacheMiss()
	}
	f.forward(sc, pkt, query)
}

// forward relays the query upstream on a fresh ephemeral port.
func (f *Forwarder) forward(sc *netsim.ServiceCtx, pkt netsim.Packet, query *dnswire.Message) {
	if !f.Upstream.IsValid() || !f.Egress.IsValid() {
		f.reply(sc, pkt, dnswire.NewErrorResponse(query, dnswire.RCodeServerFailure))
		return
	}
	f.Metrics.forwarded()
	port := f.allocPort()
	f.pending[port] = fwdPending{clientPkt: pkt, clientID: query.Header.ID, q: query.Question()}
	sc.Router.Bind(port, f)
	// The upstream query shares the client's payload bytes: payloads are
	// immutable in flight, and only the exchange initiator recycles them.
	sc.Send(netsim.Packet{
		Src:     netip.AddrPortFrom(f.Egress, port),
		Dst:     f.Upstream,
		Proto:   netsim.UDP,
		TTL:     netsim.DefaultTTL,
		Payload: pkt.Payload,
	})
}

// handleUpstream relays an upstream response back to the waiting client.
func (f *Forwarder) handleUpstream(sc *netsim.ServiceCtx, pkt netsim.Packet) {
	p, ok := f.pending[pkt.Dst.Port()]
	if !ok {
		return
	}
	delete(f.pending, pkt.Dst.Port())
	sc.Router.Unbind(pkt.Dst.Port())
	if !f.NoCache {
		f.maybeCache(sc, p.q, pkt.Payload)
	}
	// Relay the upstream bytes as-is; the client (the flow's initiator)
	// owns the recycling of this payload.
	sc.Reply(p.clientPkt, pkt.Payload)
}

// maybeCache stores a successful upstream answer for its minimum TTL.
// TTL-zero records (the dynamic echo zones) stay uncacheable, and
// CHAOS-class traffic is never cached.
func (f *Forwarder) maybeCache(sc *netsim.ServiceCtx, q dnswire.Question, payload []byte) {
	if q.Class != dnswire.ClassINET {
		return
	}
	m, err := dnswire.Unpack(payload)
	if err != nil || m.Header.RCode != dnswire.RCodeSuccess || len(m.Answers) == 0 {
		return
	}
	minTTL := m.Answers[0].TTL
	for _, rr := range m.Answers {
		if rr.TTL < minTTL {
			minTTL = rr.TTL
		}
	}
	if minTTL == 0 {
		return
	}
	// Own the bytes: the relayed payload buffer is recycled by the
	// client once parsed, so the entry must keep its own copy.
	f.cache[fwdCacheKey{name: q.Name.Canonical(), typ: q.Type, class: q.Class}] = fwdCacheEntry{
		wire:    append([]byte(nil), payload...),
		expires: sc.Now() + time.Duration(minTTL)*time.Second,
	}
}

// reply packs and sends a locally-generated answer into a recycled
// payload buffer.
func (f *Forwarder) reply(sc *netsim.ServiceCtx, to netsim.Packet, m *dnswire.Message) {
	payload, err := m.PackTo(sc.PayloadBuf())
	if err != nil {
		return
	}
	sc.Reply(to, payload)
}

// allocPort cycles upstream ports within [20000, 28000).
func (f *Forwarder) allocPort() uint16 {
	p := f.nextPort
	f.nextPort++
	if f.nextPort >= 28000 {
		f.nextPort = 20000
	}
	return p
}
