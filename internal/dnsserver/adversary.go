package dnsserver

import (
	"encoding/binary"
	"hash/fnv"
	"net/netip"

	"github.com/dnswatch/dnsloc/internal/dnswire"
	"github.com/dnswatch/dnsloc/internal/netsim"
)

// Adversary models an interceptor that actively evades the CHAOS
// fingerprinting technique instead of answering debugging queries with
// its own honest persona. The paper's detector assumes interceptors
// stay polite about version.bind (§3.2); this ladder is what happens
// when they stop. Levels are cumulative — level N enables every evasion
// at or below N:
//
//	L0  honest: the persona answers, as today (Adversary absent).
//	L1  replay: answer CHAOS debugging queries with the genuine answer
//	    the diverted-to target would have given, making the intercepted
//	    path indistinguishable from the real one on that signal.
//	L2  forge: fabricate format-valid per-target persona strings, so
//	    even validators that check answer shape pass. Forgeries are
//	    drawn per query ID, which is what longitudinal re-probing
//	    (Whac-A-Mole) later exploits as answer-set drift.
//	L3  selective bogons: answer only a deterministic subset of clients'
//	    bogon-addressed queries, degrading the §4.2 ISP-localization
//	    signal without fully surrendering it.
//	L4  CHAOS rate limiting: silently drop CHAOS debugging queries past
//	    a small per-client budget — the DPI-ambiguity behavior Xue et
//	    al. describe — starving repeated fingerprint probes.
//
// Every decision is a pure function of (Seed, addresses, query name,
// query ID) or of a per-(device, client) counter fed only by that
// client's own packets, so faulted sharded runs stay byte-identical at
// any worker count — the same contract netsim's fault plane keeps.
//
// The adversary only tampers with *diverted* flows: packets whose
// conntrack original destination (Packet.OrigDst) is set and differs
// from the serving device's own address. Queries addressed to the
// device itself — the detector's direct CPE fingerprint probe, or a
// forwarder's upstream traffic — are answered honestly, because a real
// evasive middlebox has no reason to lie about flows that never claimed
// to be someone else.
type Adversary struct {
	// Level selects the evasion rung (0 disables the adversary).
	Level int
	// Seed isolates this adversary's deterministic draws.
	Seed int64

	// Genuine returns the CHAOS debugging answer the original target
	// would have given: a TXT string, or (when txt is empty) the error
	// rcode the target answers with. ok reports whether the target is
	// known; unknown targets fall through to the honest persona.
	Genuine func(target netip.Addr, name dnswire.Name) (txt string, rc dnswire.RCode, ok bool)

	// Forge fabricates a format-valid persona string for the operator
	// owning target. ok=false means "no forgery for this query" — the
	// adversary replays the genuine answer instead (forging a string
	// where the target genuinely errors would give the game away).
	Forge func(target netip.Addr, name dnswire.Name, draw uint64) (string, bool)

	// Bogon reports whether an address is a bogon destination — the
	// detector's ISP-localization canary targets (§4.2).
	Bogon func(netip.Addr) bool

	// ChaosBudget is the L4 per-client CHAOS query allowance (0 means
	// DefaultChaosBudget). There is no refill: the budget models a DPI
	// box that stops cooperating once a client looks like a scanner.
	ChaosBudget int

	budgets map[advKey]int
}

// DefaultChaosBudget lets the first CHAOS exchange through (both
// service addresses of one operator) and drops the rest.
const DefaultChaosBudget = 2

// advKey scopes the L4 budget to one (device, client) pair: a client's
// allowance depends only on its own packets, never on what other
// subscribers share the middlebox — the property that keeps sharded
// runs byte-identical.
type advKey struct {
	self   netip.Addr
	client netip.Addr
}

// Tags keep the deterministic draws of different mechanisms independent.
const (
	advTagForge = "adv-forge"
	advTagBogon = "adv-bogon"
)

// ChaosAnswer intercepts a CHAOS debugging query diverted to the device
// at self. It returns the evasive response to send, or drop=true when
// the query must be silently consumed (L4 rate limiting). Both zero
// means the adversary does not apply — serve honestly.
func (a *Adversary) ChaosAnswer(query *dnswire.Message, pkt netsim.Packet, self netip.Addr) (resp *dnswire.Message, drop bool) {
	if a == nil || a.Level < 1 {
		return nil, false
	}
	target := pkt.OrigDst
	if !target.IsValid() || target.Addr() == self {
		return nil, false
	}
	q := query.Question()
	if q.Class != dnswire.ClassCHAOS || q.Type != dnswire.TypeTXT || !IsChaosDebugName(q.Name) {
		return nil, false
	}
	if a.Level >= 4 && !a.allowChaos(self, pkt.Src.Addr()) {
		return nil, true
	}
	if a.Level >= 2 && a.Forge != nil {
		if s, ok := a.Forge(target.Addr(), q.Name, a.forgeDraw(target.Addr(), q.Name, query.Header.ID)); ok {
			return dnswire.NewTXTResponse(query, s), false
		}
	}
	if a.Genuine != nil {
		if txt, rc, ok := a.Genuine(target.Addr(), q.Name); ok {
			if txt != "" {
				return dnswire.NewTXTResponse(query, txt), false
			}
			return dnswire.NewErrorResponse(query, rc), false
		}
	}
	return nil, false
}

// AllowBogon gates INET queries whose original destination is a bogon
// address: at L3+ only a deterministic half of clients get answers,
// judged per (device, client) so retries and re-probe rounds see a
// consistent fate. Non-bogon and non-diverted traffic always passes.
func (a *Adversary) AllowBogon(pkt netsim.Packet, self netip.Addr) bool {
	if a == nil || a.Level < 3 || a.Bogon == nil {
		return true
	}
	target := pkt.OrigDst
	if !target.IsValid() || target.Addr() == self || !a.Bogon(target.Addr()) {
		return true
	}
	return a.flowDraw(advTagBogon, self, pkt.Src.Addr()) < 0.5
}

// allowChaos charges one token from the (self, client) budget.
func (a *Adversary) allowChaos(self, client netip.Addr) bool {
	if a.budgets == nil {
		a.budgets = make(map[advKey]int)
	}
	key := advKey{self: self, client: client}
	n, ok := a.budgets[key]
	if !ok {
		n = a.ChaosBudget
		if n <= 0 {
			n = DefaultChaosBudget
		}
	}
	if n <= 0 {
		return false
	}
	a.budgets[key] = n - 1
	return true
}

// forgeDraw derives the forgery's deterministic randomness from the
// query itself. Including the query ID makes retransmissions of one
// query (same message, same ID) see a stable forgery while fresh
// re-probe rounds (fresh IDs) see a different one — which is exactly
// the drift signal longitudinal re-probing detects.
func (a *Adversary) forgeDraw(target netip.Addr, name dnswire.Name, id uint16) uint64 {
	h := fnv.New64a()
	var buf [8]byte
	binary.LittleEndian.PutUint64(buf[:], uint64(a.Seed))
	h.Write(buf[:])
	h.Write([]byte(advTagForge))
	t16 := target.As16()
	h.Write(t16[:])
	h.Write([]byte(name.Canonical()))
	binary.LittleEndian.PutUint16(buf[:2], id)
	h.Write(buf[:2])
	return mix64(h.Sum64())
}

// mix64 is a splitmix64-style finalizer. FNV-64a avalanches poorly —
// inputs differing only in a trailing byte (neighboring client
// addresses) land close together — so the raw sum would make the L3
// gate nearly all-or-nothing within one prefix instead of a per-client
// coin flip.
func mix64(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e9b5
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// flowDraw derives a uniform [0, 1) draw from (seed, tag, device,
// client) — stable across the client's whole measurement.
func (a *Adversary) flowDraw(tag string, self, client netip.Addr) float64 {
	h := fnv.New64a()
	var buf [8]byte
	binary.LittleEndian.PutUint64(buf[:], uint64(a.Seed))
	h.Write(buf[:])
	h.Write([]byte(tag))
	s16 := self.As16()
	h.Write(s16[:])
	c16 := client.As16()
	h.Write(c16[:])
	return float64(mix64(h.Sum64())>>11) / (1 << 53)
}
