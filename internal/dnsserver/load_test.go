package dnsserver

import (
	"testing"

	"github.com/dnswatch/dnsloc/internal/dnswire"
)

func TestZoneLoad(t *testing.T) {
	z := NewZone("example.com")
	err := z.Load(`
; a readable test zone
www.example.com.   300 IN A     192.0.2.80
www.example.com.   300 IN AAAA  2001:db8::80
alias.example.com.  60 IN CNAME www.example.com.
example.com.       300 IN TXT   "v=spf1 -all"
`)
	if err != nil {
		t.Fatal(err)
	}
	res, rrs, _ := z.Lookup(q("www.example.com", dnswire.TypeA), testSrc)
	if res != LookupAnswer || len(rrs) != 1 {
		t.Errorf("A lookup: res=%v rrs=%v", res, rrs)
	}
	res, _, _ = z.Lookup(q("alias.example.com", dnswire.TypeA), testSrc)
	if res != LookupCNAME {
		t.Errorf("CNAME lookup: res=%v", res)
	}
}

func TestZoneLoadRejectsOutOfZone(t *testing.T) {
	z := NewZone("example.com")
	if err := z.Load("www.example.org. 300 IN A 192.0.2.1"); err == nil {
		t.Fatal("out-of-zone record loaded")
	}
	if err := z.Load("not a record"); err == nil {
		t.Fatal("garbage loaded")
	}
}
