package dnsserver

import (
	"github.com/dnswatch/dnsloc/internal/dnswire"
	"github.com/dnswatch/dnsloc/internal/dotsim"
	"github.com/dnswatch/dnsloc/internal/netsim"
)

// EncryptedPolicy is what a CPE or middlebox does with encrypted DNS
// transports (DoT/DoH) crossing it — the three behaviors the XDRI
// study observed in residential routers.
type EncryptedPolicy int

// Policies.
const (
	// EncPass lets encrypted DNS through untouched. Adopting clients
	// escape the interceptor entirely.
	EncPass EncryptedPolicy = iota
	// EncBlock silently drops encrypted DNS, forcing opportunistic
	// clients to downgrade to Do53 (where the UDP interception rules
	// apply) and strict clients to fail outright.
	EncBlock
	// EncTerminate terminates the session at the interceptor, which
	// presents its own untrusted certificate and answers from its own
	// resolver — transparent interception carried over to DoT/DoH.
	EncTerminate
)

// String names the policy.
func (p EncryptedPolicy) String() string {
	switch p {
	case EncBlock:
		return "block"
	case EncTerminate:
		return "terminate"
	default:
		return "pass"
	}
}

// StreamEndpoint serves encrypted stream sessions (netsim stream frames
// on port 853/443) in front of a plain DNS service. It answers the
// handshake itself — presenting its certificate and issuing a stateless
// resumption ticket — and hands the DNS message inside each data frame
// to the Inner service, Enc-marked so the eventual response returns
// inside the session.
//
// The same type serves both sides of the study: a resolver operator
// binds one with a trusted self-subject certificate; a terminating
// interceptor binds one with an untrusted certificate in front of the
// resolver it would have answered Do53 queries from.
type StreamEndpoint struct {
	// Cert is the certificate presented in the handshake. An operator
	// endpoint sets Trusted; an interceptor's stays untrusted.
	Cert dotsim.Certificate
	// SelfSubject makes the presented certificate name the address the
	// session was addressed to (at delivery) instead of Cert.Subject —
	// how one endpoint bound across an operator's anycast addresses
	// presents the right name on each.
	SelfSubject bool
	// Inner answers the DNS queries carried inside sessions.
	Inner netsim.Service
	// Salt keys this endpoint's resumption tickets.
	Salt int64
}

// ServeUDP implements netsim.Service for stream frames.
//
// The inner query keeps the delivery destination (addr:853/443) rather
// than being rewritten to port 53: ServiceCtx.Reply then builds the
// response with that same source, which is exactly what the reverse-
// DNAT table needs to spoof a terminated session's response back to the
// address the client dialed.
func (e *StreamEndpoint) ServeUDP(sc *netsim.ServiceCtx, pkt netsim.Packet) {
	if alpn, ok := netsim.ParseStreamHello(pkt.Payload); ok {
		cert := netsim.StreamCert{Subject: e.Cert.Subject, Trusted: e.Cert.Trusted}
		if e.SelfSubject {
			cert.Subject = pkt.Dst.Addr()
		}
		ticket := netsim.StreamTicket(pkt.Dst.Addr(), pkt.Src.Addr(), e.Salt)
		sc.Reply(pkt, netsim.PackStreamHelloAck(alpn, cert, ticket))
		return
	}
	if alpn, ticket, framed, ok := netsim.ParseStreamData(pkt.Payload); ok {
		if ticket != netsim.StreamTicket(pkt.Dst.Addr(), pkt.Src.Addr(), e.Salt) {
			sc.Reply(pkt, netsim.PackStreamAlert(netsim.StreamAlertBadTicket))
			return
		}
		body, _, err := dnswire.SplitTCPFrame(framed)
		if err != nil {
			sc.Reply(pkt, netsim.PackStreamAlert(netsim.StreamAlertProtocol))
			return
		}
		inner := pkt
		inner.Payload = body
		inner.Enc = alpn
		e.Inner.ServeUDP(sc, inner)
		return
	}
	sc.Reply(pkt, netsim.PackStreamAlert(netsim.StreamAlertProtocol))
}
