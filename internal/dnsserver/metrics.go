package dnsserver

import "github.com/dnswatch/dnsloc/internal/metrics"

// ForwarderMetrics holds the CPE forwarder's shared registry handles.
// One set serves every forwarder in a world — the counters aggregate
// across homes. All of them are Stable: a forwarder only ever talks to
// its own home's host, so its traffic is unaffected by which other
// probes share the world.
type ForwarderMetrics struct {
	Queries     *metrics.Counter // port-53 queries parsed
	ChaosLocal  *metrics.Counter // answered by the persona without forwarding
	CacheHits   *metrics.Counter // answered from the dnsmasq-style cache
	CacheMisses *metrics.Counter // INET lookups that had to go upstream
	Forwarded   *metrics.Counter // queries relayed to the upstream resolver
}

// NewForwarderMetrics registers the forwarder metrics on reg. Returns
// nil on a nil registry (disabled plane).
func NewForwarderMetrics(reg *metrics.Registry) *ForwarderMetrics {
	if reg == nil {
		return nil
	}
	return &ForwarderMetrics{
		Queries:     reg.Counter("dnsserver.forwarder_queries", metrics.Stable),
		ChaosLocal:  reg.Counter("dnsserver.forwarder_chaos_local", metrics.Stable),
		CacheHits:   reg.Counter("dnsserver.forwarder_cache_hits", metrics.Stable),
		CacheMisses: reg.Counter("dnsserver.forwarder_cache_misses", metrics.Stable),
		Forwarded:   reg.Counter("dnsserver.forwarder_upstream", metrics.Stable),
	}
}

// Nil-safe recording helpers: a forwarder with no metrics wired calls
// these on a nil receiver.

func (m *ForwarderMetrics) query() {
	if m != nil {
		m.Queries.Inc()
	}
}

func (m *ForwarderMetrics) chaosLocal() {
	if m != nil {
		m.ChaosLocal.Inc()
	}
}

func (m *ForwarderMetrics) cacheHit() {
	if m != nil {
		m.CacheHits.Inc()
	}
}

func (m *ForwarderMetrics) cacheMiss() {
	if m != nil {
		m.CacheMisses.Inc()
	}
}

func (m *ForwarderMetrics) forwarded() {
	if m != nil {
		m.Forwarded.Inc()
	}
}
