package dnsserver

import (
	"fmt"
	"net/netip"
	"sort"

	"github.com/dnswatch/dnsloc/internal/dnssec"
	"github.com/dnswatch/dnsloc/internal/dnswire"
)

// DynamicFunc synthesizes records for a name at query time. The source
// address is the address the authoritative server sees the query come
// from — for the whoami.akamai.com and o-o.myaddr.l.google.com zones
// that address *is* the answer, which is what makes those names useful
// for detecting who really resolved a query.
type DynamicFunc func(q dnswire.Question, src netip.AddrPort) []dnswire.Record

// Zone is one authoritative zone: static records, optional dynamic
// names, and delegations to child zones.
type Zone struct {
	Origin dnswire.Name
	SOA    dnswire.SOARData

	records map[dnswire.Name]map[dnswire.Type][]dnswire.Record
	dynamic map[dnswire.Name]DynamicFunc
	// delegations maps a child cut (e.g. "com" in the root zone) to the
	// NS records and glue for the referral.
	delegations map[dnswire.Name]*Delegation

	// DNSSEC state, populated by Sign.
	key  *dnssec.Key
	sigs map[dnswire.Name]map[dnswire.Type]dnswire.Record
}

// Delegation describes a zone cut.
type Delegation struct {
	Cut  dnswire.Name
	NS   []dnswire.Name
	Glue map[dnswire.Name][]netip.Addr
}

// NewZone creates an empty zone with a standard SOA.
func NewZone(origin dnswire.Name) *Zone {
	return &Zone{
		Origin: origin,
		SOA: dnswire.SOARData{
			MName:   joinName("ns1", origin),
			RName:   joinName("hostmaster", origin),
			Serial:  2021110201,
			Refresh: 7200,
			Retry:   3600,
			Expire:  1209600,
			Minimum: 300,
		},
		records:     make(map[dnswire.Name]map[dnswire.Type][]dnswire.Record),
		dynamic:     make(map[dnswire.Name]DynamicFunc),
		delegations: make(map[dnswire.Name]*Delegation),
	}
}

// joinName concatenates a relative label onto an origin.
func joinName(label string, origin dnswire.Name) dnswire.Name {
	if origin == "" {
		return dnswire.Name(label)
	}
	return dnswire.Name(label + "." + string(origin))
}

// Add inserts a record. The record's name must be at or below the origin.
func (z *Zone) Add(rr dnswire.Record) error {
	if !rr.Name.IsSubdomainOf(z.Origin) {
		return fmt.Errorf("dnsserver: record %q outside zone %q", rr.Name, z.Origin)
	}
	key := rr.Name.Canonical()
	if z.records[key] == nil {
		z.records[key] = make(map[dnswire.Type][]dnswire.Record)
	}
	z.records[key][rr.Type()] = append(z.records[key][rr.Type()], rr)
	return nil
}

// MustAdd inserts a record and panics on error; for static world-building.
func (z *Zone) MustAdd(rr dnswire.Record) {
	if err := z.Add(rr); err != nil {
		panic(err)
	}
}

// AddAddr inserts an A or AAAA record for name.
func (z *Zone) AddAddr(name dnswire.Name, ttl uint32, addrs ...netip.Addr) {
	for _, a := range addrs {
		var data dnswire.RData
		if a.Is4() {
			data = dnswire.ARData{Addr: a}
		} else {
			data = dnswire.AAAARData{Addr: a}
		}
		z.MustAdd(dnswire.Record{Name: name, Class: dnswire.ClassINET, TTL: ttl, Data: data})
	}
}

// AddTXT inserts a TXT record.
func (z *Zone) AddTXT(name dnswire.Name, ttl uint32, strings ...string) {
	z.MustAdd(dnswire.Record{
		Name: name, Class: dnswire.ClassINET, TTL: ttl,
		Data: dnswire.TXTRData{Strings: strings},
	})
}

// AddCNAME inserts a CNAME record.
func (z *Zone) AddCNAME(name, target dnswire.Name, ttl uint32) {
	z.MustAdd(dnswire.Record{
		Name: name, Class: dnswire.ClassINET, TTL: ttl,
		Data: dnswire.CNAMERData{Target: target},
	})
}

// Load parses zone-file-style lines (dnswire.ParseRecords syntax) and
// adds every record.
func (z *Zone) Load(text string) error {
	rrs, err := dnswire.ParseRecords(text)
	if err != nil {
		return err
	}
	for _, rr := range rrs {
		if err := z.Add(rr); err != nil {
			return err
		}
	}
	return nil
}

// SetDynamic registers a dynamic name.
func (z *Zone) SetDynamic(name dnswire.Name, fn DynamicFunc) {
	z.dynamic[name.Canonical()] = fn
}

// Delegate records a zone cut with its nameservers and glue addresses.
func (z *Zone) Delegate(cut dnswire.Name, ns map[dnswire.Name][]netip.Addr) {
	d := &Delegation{Cut: cut, Glue: make(map[dnswire.Name][]netip.Addr)}
	names := make([]dnswire.Name, 0, len(ns))
	for host := range ns {
		names = append(names, host)
	}
	sort.Slice(names, func(i, j int) bool { return names[i] < names[j] })
	for _, host := range names {
		d.NS = append(d.NS, host)
		d.Glue[host.Canonical()] = ns[host]
	}
	z.delegations[cut.Canonical()] = d
}

// LookupResult classifies an authoritative lookup.
type LookupResult int

// Lookup outcomes.
const (
	// LookupAnswer: records found; Answer holds them.
	LookupAnswer LookupResult = iota
	// LookupNoData: the name exists but not with the requested type.
	LookupNoData
	// LookupNXDomain: the name does not exist in the zone.
	LookupNXDomain
	// LookupDelegation: the name is below a zone cut; Referral holds it.
	LookupDelegation
	// LookupCNAME: the name is an alias; Answer holds the CNAME record.
	LookupCNAME
	// LookupOutOfZone: the name is not within this zone at all.
	LookupOutOfZone
)

// Lookup resolves a question against the zone.
func (z *Zone) Lookup(q dnswire.Question, src netip.AddrPort) (LookupResult, []dnswire.Record, *Delegation) {
	if !q.Name.IsSubdomainOf(z.Origin) {
		return LookupOutOfZone, nil, nil
	}
	// Delegation check: walk ancestors of q.Name strictly below origin.
	// The parent stays authoritative for DS records *at* the cut
	// (RFC 4035 §2.4), so a DS query for the cut name itself is answered
	// from zone data rather than referred.
	for name := q.Name; ; {
		if name.Canonical() != z.Origin.Canonical() {
			if d, ok := z.delegations[name.Canonical()]; ok {
				dsAtCut := q.Type == dnswire.TypeDS && q.Name.Equal(name)
				if !dsAtCut {
					return LookupDelegation, nil, d
				}
			}
		}
		parent, ok := name.Parent()
		if !ok || !parent.IsSubdomainOf(z.Origin) {
			break
		}
		name = parent
	}
	key := q.Name.Canonical()
	if fn, ok := z.dynamic[key]; ok {
		if rrs := fn(q, src); rrs != nil {
			return LookupAnswer, rrs, nil
		}
		return LookupNoData, nil, nil
	}
	byType, exists := z.records[key]
	if !exists {
		return LookupNXDomain, nil, nil
	}
	if rrs, ok := byType[q.Type]; ok && q.Type != dnswire.TypeANY {
		return LookupAnswer, rrs, nil
	}
	if q.Type == dnswire.TypeANY {
		var all []dnswire.Record
		var types []dnswire.Type
		for t := range byType {
			types = append(types, t)
		}
		sort.Slice(types, func(i, j int) bool { return types[i] < types[j] })
		for _, t := range types {
			all = append(all, byType[t]...)
		}
		return LookupAnswer, all, nil
	}
	if rrs, ok := byType[dnswire.TypeCNAME]; ok {
		return LookupCNAME, rrs, nil
	}
	return LookupNoData, nil, nil
}

// SOARecord returns the zone's SOA as a record for negative answers.
func (z *Zone) SOARecord() dnswire.Record {
	return dnswire.Record{
		Name: z.Origin, Class: dnswire.ClassINET, TTL: z.SOA.Minimum, Data: z.SOA,
	}
}
