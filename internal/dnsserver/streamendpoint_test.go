package dnsserver

import (
	"testing"

	"github.com/dnswatch/dnsloc/internal/dnswire"
	"github.com/dnswatch/dnsloc/internal/dotsim"
	"github.com/dnswatch/dnsloc/internal/netsim"
)

// streamWorld extends the DNS world with a stream endpoint on the
// resolver's DoT port, fronting the same recursive resolver.
func buildStreamWorld(t *testing.T) (*dnsWorld, *StreamEndpoint) {
	t.Helper()
	w := buildDNSWorld(t)
	ep := &StreamEndpoint{
		Cert:  dotsim.Certificate{Subject: addr("10.53.0.53"), Trusted: true},
		Inner: w.resolver,
		Salt:  3,
	}
	w.resRtr.Bind(netsim.PortDoT, ep)
	return w, ep
}

// streamExchange sends one TCP-framed stream payload from the client.
func streamExchange(t *testing.T, w *dnsWorld, payload []byte) []netsim.Packet {
	t.Helper()
	pkts, err := w.client.Exchange(w.net, ap("10.53.0.53:853"), payload,
		netsim.ExchangeOptions{Proto: netsim.TCP})
	if err != nil {
		t.Fatalf("stream exchange: %v", err)
	}
	return pkts
}

// TestStreamEndpointHandshakeIssuesTicket: a hello draws a helloAck
// carrying the endpoint's certificate and a ticket that verifies
// against the flow identity.
func TestStreamEndpointHandshakeIssuesTicket(t *testing.T) {
	w, _ := buildStreamWorld(t)
	pkts := streamExchange(t, w, netsim.PackStreamHello(netsim.ALPNDoT))
	alpn, cert, ticket, ok := netsim.ParseStreamHelloAck(pkts[0].Payload)
	if !ok || alpn != netsim.ALPNDoT {
		t.Fatalf("helloAck = (%d, ok=%v)", alpn, ok)
	}
	if !cert.Trusted || cert.Subject != addr("10.53.0.53") {
		t.Errorf("cert = %+v, want trusted 10.53.0.53", cert)
	}
	if want := netsim.StreamTicket(addr("10.53.0.53"), addr("203.0.113.2"), 3); ticket != want {
		t.Errorf("ticket = %#x, want flow-derived %#x", ticket, want)
	}
}

// TestStreamEndpointSelfSubjectNamesDeliveryAddress: with SelfSubject,
// the certificate names the address the session was addressed to —
// what one endpoint bound across anycast addresses presents.
func TestStreamEndpointSelfSubjectNamesDeliveryAddress(t *testing.T) {
	w, ep := buildStreamWorld(t)
	ep.SelfSubject = true
	ep.Cert = dotsim.Certificate{Trusted: true} // no subject of its own
	pkts := streamExchange(t, w, netsim.PackStreamHello(netsim.ALPNDoT))
	_, cert, _, ok := netsim.ParseStreamHelloAck(pkts[0].Payload)
	if !ok || cert.Subject != addr("10.53.0.53") {
		t.Errorf("cert subject = %v, want the delivery address", cert.Subject)
	}
}

// TestStreamEndpointAnswersInSession: a data frame with a valid ticket
// reaches the inner resolver and the DNS answer returns Enc-marked.
func TestStreamEndpointAnswersInSession(t *testing.T) {
	w, _ := buildStreamWorld(t)
	ticket := netsim.StreamTicket(addr("10.53.0.53"), addr("203.0.113.2"), 3)
	query := dnswire.NewQuery(7, "www.example.com", dnswire.TypeA, dnswire.ClassINET)
	framed, err := dnswire.AppendTCPFrame(nil, dnswire.MustPack(query))
	if err != nil {
		t.Fatal(err)
	}
	pkts := streamExchange(t, w, netsim.PackStreamData(netsim.ALPNDoT, ticket, framed))
	if pkts[0].Enc != netsim.ALPNDoT {
		t.Errorf("response Enc = %d, want %d — in-session answers stay inside the session", pkts[0].Enc, netsim.ALPNDoT)
	}
	m, err := dnswire.Unpack(pkts[0].Payload)
	if err != nil {
		t.Fatal(err)
	}
	if len(m.Answers) == 0 {
		t.Fatal("in-session query got no answers")
	}
}

// TestStreamEndpointRejectsBadTicket: a stale ticket draws the
// bad-ticket alert, never an answer — the signal that makes the client
// redo its handshake when the path changed underneath it.
func TestStreamEndpointRejectsBadTicket(t *testing.T) {
	w, _ := buildStreamWorld(t)
	query := dnswire.NewQuery(8, "www.example.com", dnswire.TypeA, dnswire.ClassINET)
	framed, err := dnswire.AppendTCPFrame(nil, dnswire.MustPack(query))
	if err != nil {
		t.Fatal(err)
	}
	pkts := streamExchange(t, w, netsim.PackStreamData(netsim.ALPNDoT, 0xbad, framed))
	if code, ok := netsim.ParseStreamAlert(pkts[0].Payload); !ok || code != netsim.StreamAlertBadTicket {
		t.Errorf("stale ticket drew (%d, ok=%v), want the bad-ticket alert", code, ok)
	}
}

// TestStreamEndpointRejectsMalformedFrames: both a non-frame payload
// and a data frame whose inner TCP framing is broken draw the protocol
// alert.
func TestStreamEndpointRejectsMalformedFrames(t *testing.T) {
	w, _ := buildStreamWorld(t)
	pkts := streamExchange(t, w, []byte{0x12, 0x34, 0x00})
	if code, ok := netsim.ParseStreamAlert(pkts[0].Payload); !ok || code != netsim.StreamAlertProtocol {
		t.Errorf("garbage payload drew (%d, ok=%v), want the protocol alert", code, ok)
	}
	ticket := netsim.StreamTicket(addr("10.53.0.53"), addr("203.0.113.2"), 3)
	pkts = streamExchange(t, w, netsim.PackStreamData(netsim.ALPNDoT, ticket, []byte{0x00, 0x10, 0x01}))
	if code, ok := netsim.ParseStreamAlert(pkts[0].Payload); !ok || code != netsim.StreamAlertProtocol {
		t.Errorf("broken inner framing drew (%d, ok=%v), want the protocol alert", code, ok)
	}
}

// TestEncryptedPolicyString pins the policy names the sweep tables use.
func TestEncryptedPolicyString(t *testing.T) {
	cases := map[EncryptedPolicy]string{
		EncPass: "pass", EncBlock: "block", EncTerminate: "terminate",
	}
	for pol, want := range cases {
		if got := pol.String(); got != want {
			t.Errorf("%d.String() = %q, want %q", pol, got, want)
		}
	}
}
