package dnsserver

import (
	"net/netip"
	"testing"

	"github.com/dnswatch/dnsloc/internal/dnswire"
)

func q(name string, typ dnswire.Type) dnswire.Question {
	return dnswire.Question{Name: dnswire.Name(name), Type: typ, Class: dnswire.ClassINET}
}

var testSrc = netip.MustParseAddrPort("198.51.100.9:4242")

func TestZoneLookupAnswer(t *testing.T) {
	z := NewZone("example.com")
	z.AddAddr("www.example.com", 300, netip.MustParseAddr("192.0.2.10"))
	res, rrs, _ := z.Lookup(q("www.example.com", dnswire.TypeA), testSrc)
	if res != LookupAnswer || len(rrs) != 1 {
		t.Fatalf("res=%v rrs=%v", res, rrs)
	}
	if rrs[0].Data.(dnswire.ARData).Addr != netip.MustParseAddr("192.0.2.10") {
		t.Errorf("addr = %v", rrs[0].Data)
	}
}

func TestZoneLookupCaseInsensitive(t *testing.T) {
	z := NewZone("example.com")
	z.AddAddr("WWW.Example.COM", 300, netip.MustParseAddr("192.0.2.10"))
	res, _, _ := z.Lookup(q("www.EXAMPLE.com", dnswire.TypeA), testSrc)
	if res != LookupAnswer {
		t.Errorf("res = %v, want LookupAnswer", res)
	}
}

func TestZoneLookupNoData(t *testing.T) {
	z := NewZone("example.com")
	z.AddAddr("www.example.com", 300, netip.MustParseAddr("192.0.2.10"))
	res, _, _ := z.Lookup(q("www.example.com", dnswire.TypeAAAA), testSrc)
	if res != LookupNoData {
		t.Errorf("res = %v, want LookupNoData", res)
	}
}

func TestZoneLookupNXDomain(t *testing.T) {
	z := NewZone("example.com")
	res, _, _ := z.Lookup(q("missing.example.com", dnswire.TypeA), testSrc)
	if res != LookupNXDomain {
		t.Errorf("res = %v, want LookupNXDomain", res)
	}
}

func TestZoneLookupOutOfZone(t *testing.T) {
	z := NewZone("example.com")
	res, _, _ := z.Lookup(q("example.org", dnswire.TypeA), testSrc)
	if res != LookupOutOfZone {
		t.Errorf("res = %v, want LookupOutOfZone", res)
	}
}

func TestZoneLookupCNAME(t *testing.T) {
	z := NewZone("example.com")
	z.AddCNAME("alias.example.com", "www.example.com", 300)
	res, rrs, _ := z.Lookup(q("alias.example.com", dnswire.TypeA), testSrc)
	if res != LookupCNAME || len(rrs) != 1 {
		t.Fatalf("res=%v", res)
	}
}

func TestZoneDelegation(t *testing.T) {
	root := NewZone("")
	root.Delegate("com", map[dnswire.Name][]netip.Addr{
		"a.gtld": {netip.MustParseAddr("192.5.6.30")},
	})
	res, _, d := root.Lookup(q("www.example.com", dnswire.TypeA), testSrc)
	if res != LookupDelegation || d == nil || !d.Cut.Equal("com") {
		t.Fatalf("res=%v d=%+v", res, d)
	}
	if len(d.NS) != 1 || d.NS[0] != "a.gtld" {
		t.Errorf("NS = %v", d.NS)
	}
}

func TestZoneDynamicEchoesSource(t *testing.T) {
	z := NewZone("akamai.com")
	z.SetDynamic("whoami.akamai.com", func(question dnswire.Question, src netip.AddrPort) []dnswire.Record {
		if question.Type != dnswire.TypeA {
			return nil
		}
		return []dnswire.Record{{
			Name: question.Name, Class: dnswire.ClassINET, TTL: 0,
			Data: dnswire.ARData{Addr: src.Addr()},
		}}
	})
	res, rrs, _ := z.Lookup(q("whoami.akamai.com", dnswire.TypeA), testSrc)
	if res != LookupAnswer || len(rrs) != 1 {
		t.Fatalf("res=%v", res)
	}
	if rrs[0].Data.(dnswire.ARData).Addr != testSrc.Addr() {
		t.Errorf("echoed %v, want %v", rrs[0].Data, testSrc.Addr())
	}
	// Wrong type yields NoData.
	res, _, _ = z.Lookup(q("whoami.akamai.com", dnswire.TypeTXT), testSrc)
	if res != LookupNoData {
		t.Errorf("TXT lookup res = %v, want LookupNoData", res)
	}
}

func TestZoneRejectsOutOfZoneRecord(t *testing.T) {
	z := NewZone("example.com")
	err := z.Add(dnswire.Record{
		Name: "example.org", Class: dnswire.ClassINET, TTL: 1,
		Data: dnswire.ARData{Addr: netip.MustParseAddr("192.0.2.1")},
	})
	if err == nil {
		t.Fatal("out-of-zone record accepted")
	}
}

func TestZoneANYQuery(t *testing.T) {
	z := NewZone("example.com")
	z.AddAddr("m.example.com", 300, netip.MustParseAddr("192.0.2.1"), netip.MustParseAddr("2001:db8::1"))
	z.AddTXT("m.example.com", 300, "hello")
	res, rrs, _ := z.Lookup(q("m.example.com", dnswire.TypeANY), testSrc)
	if res != LookupAnswer || len(rrs) != 3 {
		t.Fatalf("res=%v len=%d, want 3 records", res, len(rrs))
	}
}

func TestChaosPersonaAnswers(t *testing.T) {
	p := PersonaUnbound
	vb := dnswire.NewChaosTXTQuery(1, "version.bind")
	resp := p.Answer(vb)
	if s, _ := resp.FirstTXT(); s != "unbound 1.9.0" {
		t.Errorf("version.bind = %q", s)
	}
	id := dnswire.NewChaosTXTQuery(2, "id.server")
	resp = p.Answer(id)
	if s, _ := resp.FirstTXT(); s != "unbound" {
		t.Errorf("id.server = %q", s)
	}
	// Silent persona NOTIMPs.
	resp = PersonaSilent.Answer(vb)
	if resp.Header.RCode != dnswire.RCodeNotImplemented {
		t.Errorf("silent persona rcode = %s", resp.Header.RCode)
	}
	// NXDomain persona.
	resp = PersonaNXDomain.Answer(vb)
	if resp.Header.RCode != dnswire.RCodeNameError {
		t.Errorf("nxdomain persona rcode = %s", resp.Header.RCode)
	}
	// Non-CHAOS queries are not handled.
	if p.Answer(dnswire.NewQuery(3, "version.bind", dnswire.TypeTXT, dnswire.ClassINET)) != nil {
		t.Error("persona answered an IN query")
	}
	// Unknown CHAOS debug name NOTIMPs.
	resp = p.Answer(dnswire.NewChaosTXTQuery(4, "hostname.bind"))
	if s, _ := resp.FirstTXT(); s != "unbound" {
		t.Errorf("hostname.bind = %q, want identity", s)
	}
}

func TestChaosDebugNameClassification(t *testing.T) {
	if !IsChaosDebugName("version.bind") || !IsChaosDebugName("ID.SERVER") {
		t.Error("debug names not recognized")
	}
	if IsChaosDebugName("example.com") {
		t.Error("example.com classified as debug name")
	}
	if !IsVersionQuery("version.server") || IsVersionQuery("id.server") {
		t.Error("IsVersionQuery misbehaves")
	}
	if !IsIdentityQuery("hostname.bind") || IsIdentityQuery("version.bind") {
		t.Error("IsIdentityQuery misbehaves")
	}
}
