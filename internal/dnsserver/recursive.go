package dnsserver

import (
	"net/netip"
	"time"

	"github.com/dnswatch/dnsloc/internal/dnswire"
	"github.com/dnswatch/dnsloc/internal/netsim"
)

// RecursiveResolver is a caching iterative resolver: the engine behind
// ISP resolvers and the recursion layer of public resolvers in the
// simulated world. It resolves names by walking the delegation tree from
// the root hints, exactly as unbound or BIND would, implemented as an
// asynchronous state machine over netsim datagrams.
type RecursiveResolver struct {
	// Persona answers CHAOS debugging queries at the front door.
	Persona ChaosPersona

	// Egress is the source address for upstream queries — the address
	// authoritative servers (and therefore whoami-style zones) see.
	Egress netip.Addr
	// Egress6 is the IPv6 egress, used when querying v6-only servers.
	Egress6 netip.Addr

	// RootHints are the root server addresses.
	RootHints []netip.Addr

	// Hook, if non-nil, gets first crack at every INET query before
	// recursion. Public resolvers use it for names they answer at the
	// front door, like o-o.myaddr.l.google.com and debug.opendns.com.
	// Returning nil passes the query on.
	Hook func(query *dnswire.Message, src netip.AddrPort) *dnswire.Message

	// RefuseAll, when nonzero, makes the resolver answer every INET query
	// with this rcode — the "status modified" alternate resolvers of
	// §4.1.2 that block queries rather than resolve them.
	RefuseAll dnswire.RCode

	// Blocklist maps canonical names to the rcode the resolver answers
	// with instead of resolving — per-domain filtering.
	Blocklist map[dnswire.Name]dnswire.RCode

	// MaxReferrals bounds delegation-following per query.
	MaxReferrals int

	// NXDomainWildcard, when valid, replaces NXDOMAIN results for A
	// queries with an A record pointing at this address — the
	// "NXDOMAIN wildcarding" monetization prior work documented
	// (Kreibich et al., Weaver et al.; §2 and §7 of the paper). It is a
	// form of DNS *redirection*, distinct from the interception this
	// repository localizes, and internal/redirect detects it.
	NXDomainWildcard netip.Addr

	// ChaosCache, when non-nil, serves front-door persona answers from
	// pre-packed bytes (see PackedAnswerCache). Optional fast path.
	ChaosCache *PackedAnswerCache

	// Adversary, when non-nil and active, evades CHAOS fingerprinting on
	// flows diverted to this resolver instead of answering honestly.
	Adversary *Adversary

	// DNSSECAware makes the resolver request and return DNSSEC records
	// (RRSIGs) when the client sets the DO bit. Oblivious resolvers —
	// common on alternate-resolver paths — silently strip them, which is
	// how interception "interferes with the correct operation of
	// DNSSEC" (§1 of the paper): a validating stub behind such an
	// interceptor can no longer build a chain of trust.
	DNSSECAware bool

	cache    map[cacheKey]cacheEntry
	pending  map[uint16]*job
	nextPort uint16
	nextID   uint16
}

type cacheKey struct {
	name  dnswire.Name
	typ   dnswire.Type
	class dnswire.Class
}

type cacheEntry struct {
	rcode   dnswire.RCode
	answers []dnswire.Record
	sigs    []dnswire.Record
	// expires is the virtual time the entry dies (min TTL of the set).
	expires time.Duration
}

// job is one in-flight client resolution.
type job struct {
	clientPkt   netsim.Packet
	clientQuery *dnswire.Message
	q           dnswire.Question
	servers     []netip.Addr
	serverIdx   int
	referrals   int
	cnameChain  []dnswire.Record
	cnameDepth  int
	port        uint16
	wantDNSSEC  bool
	sigs        []dnswire.Record
}

// NewRecursiveResolver builds a resolver with the given egress address
// and root hints.
func NewRecursiveResolver(egress netip.Addr, rootHints ...netip.Addr) *RecursiveResolver {
	return &RecursiveResolver{
		Egress:       egress,
		RootHints:    rootHints,
		MaxReferrals: 16,
		cache:        make(map[cacheKey]cacheEntry),
		pending:      make(map[uint16]*job),
		nextPort:     10000,
		nextID:       1,
	}
}

// FlushCache empties the resolver cache.
func (r *RecursiveResolver) FlushCache() { r.cache = make(map[cacheKey]cacheEntry) }

// ServeUDP implements netsim.Service: port 53 receives client queries;
// ephemeral ports receive upstream responses.
func (r *RecursiveResolver) ServeUDP(sc *netsim.ServiceCtx, pkt netsim.Packet) {
	// Enc-marked packets are client queries unwrapped by a stream
	// endpoint, whatever their destination port; see Forwarder.ServeUDP.
	if pkt.Dst.Port() != 53 && pkt.Enc == 0 {
		r.handleUpstream(sc, pkt)
		return
	}
	query, err := dnswire.Unpack(pkt.Payload)
	if err != nil || query.Header.Response || len(query.Questions) == 0 {
		return
	}
	if query.Question().Class == dnswire.ClassCHAOS {
		if resp, drop := r.Adversary.ChaosAnswer(query, pkt, r.Egress); drop {
			return
		} else if resp != nil {
			r.reply(sc, pkt, resp)
			return
		}
		if wire := r.ChaosCache.Serve(sc, r.Persona, query); wire != nil {
			sc.Reply(pkt, wire)
			return
		}
	}
	if chaos := r.Persona.Answer(query); chaos != nil {
		r.reply(sc, pkt, chaos)
		return
	}
	q := query.Question()
	if q.Class != dnswire.ClassINET {
		r.reply(sc, pkt, dnswire.NewErrorResponse(query, dnswire.RCodeNotImplemented))
		return
	}
	if !r.Adversary.AllowBogon(pkt, r.Egress) {
		return
	}
	if r.Hook != nil {
		if resp := r.Hook(query, pkt.Src); resp != nil {
			r.reply(sc, pkt, resp)
			return
		}
	}
	if r.RefuseAll != dnswire.RCodeSuccess {
		r.reply(sc, pkt, dnswire.NewErrorResponse(query, r.RefuseAll))
		return
	}
	if rc, blocked := r.Blocklist[q.Name.Canonical()]; blocked {
		r.reply(sc, pkt, dnswire.NewErrorResponse(query, rc))
		return
	}
	j := &job{
		clientPkt: pkt, clientQuery: query, q: q,
		wantDNSSEC: r.DNSSECAware && query.DO(),
	}
	r.advance(sc, j)
}

// advance moves a job forward: serve from cache, or (re)start iteration
// from the roots for the job's current question.
func (r *RecursiveResolver) advance(sc *netsim.ServiceCtx, j *job) {
	if e, ok := r.cache[r.key(j.q)]; ok {
		if e.expires > sc.Now() {
			j.sigs = append(j.sigs, e.sigs...)
			r.finish(sc, j, e.rcode, e.answers)
			return
		}
		delete(r.cache, r.key(j.q)) // expired
	}
	j.servers = r.RootHints
	j.serverIdx = 0
	r.queryNext(sc, j)
}

// queryNext sends the job's question to its next candidate server.
func (r *RecursiveResolver) queryNext(sc *netsim.ServiceCtx, j *job) {
	for j.serverIdx < len(j.servers) {
		server := j.servers[j.serverIdx]
		j.serverIdx++
		src := r.egressFor(server)
		if !src.IsValid() {
			continue
		}
		if j.port != 0 {
			sc.Router.Unbind(j.port)
		}
		j.port = r.allocPort()
		r.pending[j.port] = j
		sc.Router.Bind(j.port, r)
		upq := dnswire.NewQuery(r.allocID(), j.q.Name, j.q.Type, j.q.Class)
		upq.Header.RecursionDesired = false
		if r.DNSSECAware {
			upq.SetEDNS(4096, true)
		}
		payload, err := upq.Pack()
		if err != nil {
			continue
		}
		sc.Send(netsim.Packet{
			Src:     netip.AddrPortFrom(src, j.port),
			Dst:     netip.AddrPortFrom(server, 53),
			Proto:   netsim.UDP,
			TTL:     netsim.DefaultTTL,
			Payload: payload,
		})
		return
	}
	// Out of servers: fail the client query.
	r.finish(sc, j, dnswire.RCodeServerFailure, nil)
}

// handleUpstream processes an authoritative answer for a pending job.
func (r *RecursiveResolver) handleUpstream(sc *netsim.ServiceCtx, pkt netsim.Packet) {
	j, ok := r.pending[pkt.Dst.Port()]
	if !ok {
		return
	}
	resp, err := dnswire.Unpack(pkt.Payload)
	if err != nil || !resp.Header.Response {
		r.queryNext(sc, j)
		return
	}
	switch {
	case resp.Header.RCode == dnswire.RCodeNameError:
		// Negative caching with a conventional 60s lifetime (the zones'
		// SOA minimum is larger; a fixed small value is conservative).
		r.store(sc, j.q, cacheEntry{rcode: dnswire.RCodeNameError}, 60)
		r.finish(sc, j, dnswire.RCodeNameError, nil)
	case resp.Header.RCode != dnswire.RCodeSuccess:
		r.queryNext(sc, j) // lame or refusing server: try the next one
	case len(resp.Answers) > 0:
		r.handleAnswer(sc, j, resp)
	case len(resp.Authority) > 0:
		r.followReferral(sc, j, resp)
	default:
		// NODATA: genuine empty answer.
		r.store(sc, j.q, cacheEntry{rcode: dnswire.RCodeSuccess}, 60)
		r.finish(sc, j, dnswire.RCodeSuccess, nil)
	}
}

// handleAnswer consumes an authoritative answer section: either the
// final records, or a CNAME to chase.
func (r *RecursiveResolver) handleAnswer(sc *netsim.ServiceCtx, j *job, resp *dnswire.Message) {
	var matched, sigs []dnswire.Record
	var cname *dnswire.CNAMERData
	for _, rr := range resp.Answers {
		if rr.Type() == j.q.Type && rr.Name.Equal(j.q.Name) {
			matched = append(matched, rr)
		}
		if sig, ok := rr.Data.(dnswire.RRSIGRData); ok &&
			sig.TypeCovered == j.q.Type && rr.Name.Equal(j.q.Name) {
			sigs = append(sigs, rr)
		}
		if c, ok := rr.Data.(dnswire.CNAMERData); ok && rr.Name.Equal(j.q.Name) {
			cname = &c
			j.cnameChain = append(j.cnameChain, rr)
		}
	}
	if len(matched) > 0 {
		minTTL := matched[0].TTL
		for _, rr := range matched {
			if rr.TTL < minTTL {
				minTTL = rr.TTL
			}
		}
		r.store(sc, j.q, cacheEntry{rcode: dnswire.RCodeSuccess, answers: matched, sigs: sigs}, minTTL)
		j.sigs = append(j.sigs, sigs...)
		r.finish(sc, j, dnswire.RCodeSuccess, matched)
		return
	}
	if cname != nil && j.q.Type != dnswire.TypeCNAME {
		j.cnameDepth++
		if j.cnameDepth > 8 {
			r.finish(sc, j, dnswire.RCodeServerFailure, nil)
			return
		}
		j.q = dnswire.Question{Name: cname.Target, Type: j.q.Type, Class: j.q.Class}
		r.advance(sc, j)
		return
	}
	r.finish(sc, j, dnswire.RCodeSuccess, nil)
}

// followReferral walks one delegation step down the tree, using glue.
func (r *RecursiveResolver) followReferral(sc *netsim.ServiceCtx, j *job, resp *dnswire.Message) {
	j.referrals++
	max := r.MaxReferrals
	if max == 0 {
		max = 16
	}
	if j.referrals > max {
		r.finish(sc, j, dnswire.RCodeServerFailure, nil)
		return
	}
	var next []netip.Addr
	for _, rr := range resp.Additional {
		switch d := rr.Data.(type) {
		case dnswire.ARData:
			next = append(next, d.Addr)
		case dnswire.AAAARData:
			next = append(next, d.Addr)
		}
	}
	if len(next) == 0 {
		// Glueless delegation: a full implementation would resolve the NS
		// names; the simulated tree always provides glue, so treat the
		// absence as a lame delegation.
		r.finish(sc, j, dnswire.RCodeServerFailure, nil)
		return
	}
	j.servers = next
	j.serverIdx = 0
	r.queryNext(sc, j)
}

// finish answers the client and retires the job.
func (r *RecursiveResolver) finish(sc *netsim.ServiceCtx, j *job, rcode dnswire.RCode, answers []dnswire.Record) {
	if j.port != 0 {
		sc.Router.Unbind(j.port)
		delete(r.pending, j.port)
	}
	// NXDOMAIN wildcarding: rewrite the error into an ad-server answer.
	if rcode == dnswire.RCodeNameError && r.NXDomainWildcard.IsValid() &&
		j.q.Type == dnswire.TypeA && len(answers) == 0 {
		rcode = dnswire.RCodeSuccess
		answers = []dnswire.Record{{
			Name: j.q.Name, Class: dnswire.ClassINET, TTL: 30,
			Data: dnswire.ARData{Addr: r.NXDomainWildcard},
		}}
	}
	resp := dnswire.NewResponse(j.clientQuery, rcode)
	resp.Header.RecursionAvailable = true
	resp.Answers = append(resp.Answers, j.cnameChain...)
	resp.Answers = append(resp.Answers, answers...)
	if j.wantDNSSEC {
		resp.Answers = append(resp.Answers, j.sigs...)
	}
	r.reply(sc, j.clientPkt, resp)
}

// store caches an entry for ttl seconds of virtual time. TTL-zero
// answers (the dynamic echo zones) are deliberately uncacheable.
func (r *RecursiveResolver) store(sc *netsim.ServiceCtx, q dnswire.Question, e cacheEntry, ttl uint32) {
	if ttl == 0 {
		return
	}
	e.expires = sc.Now() + time.Duration(ttl)*time.Second
	r.cache[r.key(q)] = e
}

// reply packs and sends a response to the packet's source, reusing a
// recycled payload buffer for the bytes.
func (r *RecursiveResolver) reply(sc *netsim.ServiceCtx, to netsim.Packet, m *dnswire.Message) {
	payload, err := m.PackTo(sc.PayloadBuf())
	if err != nil {
		payload = dnswire.MustPack(dnswire.NewErrorResponse(m, dnswire.RCodeServerFailure))
	}
	sc.Reply(to, payload)
}

// egressFor picks the egress address matching the server's family.
func (r *RecursiveResolver) egressFor(server netip.Addr) netip.Addr {
	if server.Is6() && !server.Is4In6() {
		return r.Egress6
	}
	return r.Egress
}

// allocPort hands out upstream ports, cycling within [10000, 20000).
func (r *RecursiveResolver) allocPort() uint16 {
	p := r.nextPort
	r.nextPort++
	if r.nextPort >= 20000 {
		r.nextPort = 10000
	}
	return p
}

// allocID hands out upstream query IDs.
func (r *RecursiveResolver) allocID() uint16 {
	id := r.nextID
	r.nextID++
	return id
}

// key builds the cache key for a question.
func (r *RecursiveResolver) key(q dnswire.Question) cacheKey {
	return cacheKey{name: q.Name.Canonical(), typ: q.Type, class: q.Class}
}
