package dnsserver

import (
	"testing"

	"github.com/dnswatch/dnsloc/internal/dnswire"
	"github.com/dnswatch/dnsloc/internal/netsim"
)

// fwdWorld wires a forwarder in front of the dnsWorld resolver.
func fwdWorld(t *testing.T) (*dnsWorld, *Forwarder) {
	t.Helper()
	w := buildDNSWorld(t)
	fwdRtr := netsim.NewRouter("fwd", addr("172.20.0.1"))
	fwd := NewForwarder(PersonaDnsmasq, addr("172.20.0.1"), ap("10.53.0.53:53"))
	fwdRtr.Bind(53, fwd)
	fwdRtr.AddDefaultRoute(w.backbone)
	w.backbone.AddRoute(pfx("172.20.0.0/24"), fwdRtr)
	return w, fwd
}

// askFwd sends one query to the forwarder and counts network events.
func askFwd(t *testing.T, w *dnsWorld, name string, id uint16) (*dnswire.Message, int) {
	t.Helper()
	events := 0
	w.net.Tap(func(netsim.TraceEvent) { events++ })
	query := dnswire.NewQuery(id, dnswire.Name(name), dnswire.TypeA, dnswire.ClassINET)
	resps, err := w.client.Exchange(w.net, ap("172.20.0.1:53"), dnswire.MustPack(query), netsim.ExchangeOptions{})
	if err != nil {
		t.Fatalf("ask %s: %v", name, err)
	}
	m, err := dnswire.Unpack(resps[0].Payload)
	if err != nil {
		t.Fatal(err)
	}
	return m, events
}

func TestForwarderCachesAnswers(t *testing.T) {
	w, _ := fwdWorld(t)
	m1, cold := askFwd(t, w, "www.example.com", 31)
	if len(m1.Answers) == 0 {
		t.Fatalf("no answer: %s", m1)
	}
	m2, warm := askFwd(t, w, "www.example.com", 32)
	if m2.Header.ID != 32 {
		t.Errorf("cached answer has id %d, want the new query's 32", m2.Header.ID)
	}
	if len(m2.Answers) != len(m1.Answers) {
		t.Errorf("cached answers differ: %d vs %d", len(m2.Answers), len(m1.Answers))
	}
	if warm >= cold/2 {
		t.Errorf("warm lookup used %d events vs cold %d — cache ineffective", warm, cold)
	}
}

func TestForwarderDoesNotCacheTTLZero(t *testing.T) {
	// whoami-style dynamic names carry TTL 0 and must be re-asked.
	w, _ := fwdWorld(t)
	_, cold := askFwd(t, w, "whoami.example.com", 33)
	_, second := askFwd(t, w, "whoami.example.com", 34)
	if second < cold/2 {
		t.Errorf("TTL-0 answer appears cached: %d vs %d events", second, cold)
	}
}

func TestForwarderNoCacheFlag(t *testing.T) {
	// With NoCache the warm lookup still crosses the network to the
	// upstream resolver (whose own cache is legitimate), so it costs
	// strictly more events than a forwarder-cache hit does.
	wc, _ := fwdWorld(t)
	askFwd(t, wc, "www.example.com", 35)
	_, cachedWarm := askFwd(t, wc, "www.example.com", 36)

	wn, fwd := fwdWorld(t)
	fwd.NoCache = true
	askFwd(t, wn, "www.example.com", 37)
	_, nocacheWarm := askFwd(t, wn, "www.example.com", 38)

	if nocacheWarm <= cachedWarm {
		t.Errorf("NoCache warm lookup used %d events, cached %d — flag ineffective", nocacheWarm, cachedWarm)
	}
}
