package dnsserver

import (
	"encoding/binary"
	"sync"

	"github.com/dnswatch/dnsloc/internal/dnswire"
	"github.com/dnswatch/dnsloc/internal/netsim"
)

// PackedAnswerCache memoizes the wire bytes of CHAOS persona answers.
// The study asks every forwarder and resolver the same handful of
// debugging questions thousands of times; a persona's answer depends
// only on the persona and on the parts of the query the response echoes
// (first question verbatim, opcode, RD) — plus the message ID, which is
// patched into the cached bytes per query. One instance is shared by
// every server of every world stamped from a template — shard and lane
// worlds running concurrently included — so the map is a sync.Map. Two
// worlds racing on a miss both pack the identical bytes (a persona's
// answer is a pure function of the key), so whichever Store wins, the
// cached value is the same; cached slices are never mutated (the ID is
// patched into a copy).
type PackedAnswerCache struct {
	m sync.Map // packedAnswerKey -> []byte
}

type packedAnswerKey struct {
	persona ChaosPersona
	name    dnswire.Name // exact case: responses echo the query's casing
	typ     dnswire.Type
	class   dnswire.Class
	opcode  dnswire.Opcode
	rd      bool
}

// NewPackedAnswerCache returns an empty cache.
func NewPackedAnswerCache() *PackedAnswerCache {
	return &PackedAnswerCache{}
}

// Serve returns the persona's packed answer to query with the query's ID
// patched in, built in a recycled payload buffer from sc (nil sc packs
// into a fresh slice). It returns nil when the persona does not answer
// the query — callers fall through to their unhandled path — or when the
// cache itself is nil, making the fast path strictly optional. A pooled
// buffer is only taken once an answer is certain, so misses never drain
// the payload freelist.
func (c *PackedAnswerCache) Serve(sc *netsim.ServiceCtx, persona ChaosPersona, query *dnswire.Message) []byte {
	if c == nil {
		return nil
	}
	q := query.Question()
	key := packedAnswerKey{
		persona: persona,
		name:    q.Name,
		typ:     q.Type,
		class:   q.Class,
		opcode:  query.Header.Opcode,
		rd:      query.Header.RecursionDesired,
	}
	var wire []byte
	if v, ok := c.m.Load(key); ok {
		wire = v.([]byte)
	} else {
		resp := persona.Answer(query)
		if resp == nil {
			return nil
		}
		packed, err := resp.Pack()
		if err != nil {
			return nil
		}
		wire = packed
		c.m.Store(key, wire)
	}
	var buf []byte
	if sc != nil {
		buf = sc.PayloadBuf()
	}
	start := len(buf)
	buf = append(buf, wire...)
	binary.BigEndian.PutUint16(buf[start:start+2], query.Header.ID)
	return buf
}
