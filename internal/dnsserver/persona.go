// Package dnsserver implements the DNS server engines that populate the
// simulated Internet: authoritative servers, a dnsmasq-style forwarder
// (the software that runs on most CPE, per Table 5 of the paper), and a
// full iterative recursive resolver. All of them speak real DNS packets
// via internal/dnswire and run as netsim services.
package dnsserver

import (
	"github.com/dnswatch/dnsloc/internal/dnswire"
)

// ChaosPersona describes how a DNS server answers the CHAOS-class
// debugging queries of RFC 4892. These answers are the paper's
// fingerprinting signal: the version.bind string identifies the software
// (and therefore the device) that really answered an intercepted query.
type ChaosPersona struct {
	// Version is the version.bind answer. Empty means the server does
	// not implement it and responds with VersionRCode instead.
	Version string
	// Identity is the id.server / hostname.bind answer. Empty means
	// IdentityRCode.
	Identity string
	// VersionRCode is the response code when Version is empty
	// (zero value RCodeSuccess is treated as NOTIMP).
	VersionRCode dnswire.RCode
	// IdentityRCode is the response code when Identity is empty
	// (zero value treated as NOTIMP).
	IdentityRCode dnswire.RCode
}

// rcodeOrNotImp maps the zero value to NOTIMP.
func rcodeOrNotImp(rc dnswire.RCode) dnswire.RCode {
	if rc == dnswire.RCodeSuccess {
		return dnswire.RCodeNotImplemented
	}
	return rc
}

// chaosNames are the RFC 4892 debugging query names.
const (
	chaosVersionBind  = dnswire.Name("version.bind")
	chaosVersionSrv   = dnswire.Name("version.server")
	chaosHostnameBind = dnswire.Name("hostname.bind")
	chaosIDServer     = dnswire.Name("id.server")
)

// IsChaosDebugName reports whether name is one of the debugging names.
func IsChaosDebugName(name dnswire.Name) bool {
	for _, n := range []dnswire.Name{chaosVersionBind, chaosVersionSrv, chaosHostnameBind, chaosIDServer} {
		if name.Equal(n) {
			return true
		}
	}
	return false
}

// IsVersionQuery reports whether name asks for the software version.
func IsVersionQuery(name dnswire.Name) bool {
	return name.Equal(chaosVersionBind) || name.Equal(chaosVersionSrv)
}

// IsIdentityQuery reports whether name asks for the server identity.
func IsIdentityQuery(name dnswire.Name) bool {
	return name.Equal(chaosHostnameBind) || name.Equal(chaosIDServer)
}

// Answer builds the persona's response to a CHAOS TXT query, or returns
// nil if the query is not a CHAOS debugging query this persona handles.
func (p ChaosPersona) Answer(q *dnswire.Message) *dnswire.Message {
	question := q.Question()
	if question.Class != dnswire.ClassCHAOS || question.Type != dnswire.TypeTXT {
		return nil
	}
	switch {
	case IsVersionQuery(question.Name):
		if p.Version == "" {
			return dnswire.NewErrorResponse(q, rcodeOrNotImp(p.VersionRCode))
		}
		return dnswire.NewTXTResponse(q, p.Version)
	case IsIdentityQuery(question.Name):
		if p.Identity == "" {
			return dnswire.NewErrorResponse(q, rcodeOrNotImp(p.IdentityRCode))
		}
		return dnswire.NewTXTResponse(q, p.Identity)
	default:
		// Unknown CHAOS name: NOTIMP, as BIND-family servers answer.
		return dnswire.NewErrorResponse(q, dnswire.RCodeNotImplemented)
	}
}

// Stock personas. The version strings reproduce Table 5 of the paper —
// the strings real CPE returned to version.bind during the pilot study.
var (
	// PersonaDnsmasq is stock dnsmasq, the most common CPE forwarder.
	PersonaDnsmasq = ChaosPersona{Version: "dnsmasq-2.85"}
	// PersonaDnsmasqOld is an older dnsmasq build.
	PersonaDnsmasqOld = ChaosPersona{Version: "dnsmasq-2.78"}
	// PersonaPiHole is dnsmasq as shipped by Pi-hole.
	PersonaPiHole = ChaosPersona{Version: "dnsmasq-pi-hole-2.87"}
	// PersonaUnbound is an unbound resolver with default identity config.
	PersonaUnbound = ChaosPersona{Version: "unbound 1.9.0", Identity: "unbound"}
	// PersonaRedHat is a distro BIND.
	PersonaRedHat = ChaosPersona{Version: "9.11.4-RedHat", Identity: "localhost"}
	// PersonaDebian is a distro BIND.
	PersonaDebian = ChaosPersona{Version: "9.16.1-Debian"}
	// PersonaPowerDNS is PowerDNS Recursor.
	PersonaPowerDNS = ChaosPersona{Version: "PowerDNS Recursor 4.1.11", Identity: "recursor"}
	// PersonaBindBare is a BIND that reveals only its number.
	PersonaBindBare = ChaosPersona{Version: "9.16.15"}
	// PersonaWindows is a Windows Server DNS.
	PersonaWindows = ChaosPersona{Version: "Windows NS"}
	// PersonaMicrosoft is another Windows DNS variant.
	PersonaMicrosoft = ChaosPersona{Version: "Microsoft"}
	// PersonaQ9 is the string one CPE returned that mimics Quad9 backends.
	PersonaQ9 = ChaosPersona{Version: "Q9-P-7.5"}
	// PersonaNew, PersonaUnknown, PersonaNone, PersonaHuuh are the
	// hand-edited oddballs of Table 5.
	PersonaNew     = ChaosPersona{Version: "new"}
	PersonaUnknown = ChaosPersona{Version: "unknown"}
	PersonaNone    = ChaosPersona{Version: "none"}
	PersonaHuuh    = ChaosPersona{Version: "huuh?"}
	// PersonaSilent answers nothing: NOTIMP to every debugging query.
	PersonaSilent = ChaosPersona{}
	// PersonaNXDomain refuses debugging queries with NXDOMAIN, a behavior
	// the paper observed on some CPE (Table 3, probe 11992).
	PersonaNXDomain = ChaosPersona{
		VersionRCode:  dnswire.RCodeNameError,
		IdentityRCode: dnswire.RCodeNameError,
	}
)
