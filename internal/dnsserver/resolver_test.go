package dnsserver

import (
	"errors"
	"net/netip"
	"testing"

	"github.com/dnswatch/dnsloc/internal/dnswire"
	"github.com/dnswatch/dnsloc/internal/netsim"
)

func addr(s string) netip.Addr   { return netip.MustParseAddr(s) }
func ap(s string) netip.AddrPort { return netip.MustParseAddrPort(s) }
func pfx(s string) netip.Prefix  { return netip.MustParsePrefix(s) }

// dnsWorld is a miniature DNS tree on a flat backbone:
//
//	root (198.41.0.4) -> com TLD (192.5.6.30) -> example.com auth (192.0.2.2)
//	resolver at 10.53.0.53, client host at 203.0.113.2
type dnsWorld struct {
	net      *netsim.Network
	backbone *netsim.Router
	client   *netsim.Host
	resolver *RecursiveResolver
	resRtr   *netsim.Router
	authZone *Zone
}

func buildDNSWorld(t *testing.T) *dnsWorld {
	t.Helper()
	w := &dnsWorld{net: netsim.NewNetwork()}
	w.backbone = netsim.NewRouter("backbone")

	attach := func(r *netsim.Router, prefixes ...string) {
		for _, p := range prefixes {
			w.backbone.AddRoute(pfx(p), r)
		}
		r.AddDefaultRoute(w.backbone)
	}

	// Root.
	rootZone := NewZone("")
	rootZone.Delegate("com", map[dnswire.Name][]netip.Addr{
		"a.gtld-servers.net": {addr("192.5.6.30")},
	})
	rootRtr := netsim.NewRouter("root", addr("198.41.0.4"))
	rootRtr.Bind(53, NewAuthServer(rootZone))
	attach(rootRtr, "198.41.0.0/24")

	// com TLD.
	comZone := NewZone("com")
	comZone.Delegate("example.com", map[dnswire.Name][]netip.Addr{
		"ns1.example.com": {addr("192.0.2.2")},
	})
	comRtr := netsim.NewRouter("com-tld", addr("192.5.6.30"))
	comRtr.Bind(53, NewAuthServer(comZone))
	attach(comRtr, "192.5.6.0/24")

	// example.com auth.
	w.authZone = NewZone("example.com")
	w.authZone.AddAddr("www.example.com", 300, addr("192.0.2.80"))
	w.authZone.AddCNAME("alias.example.com", "www.example.com", 300)
	w.authZone.SetDynamic("whoami.example.com", func(q dnswire.Question, src netip.AddrPort) []dnswire.Record {
		if q.Type != dnswire.TypeA {
			return nil
		}
		return []dnswire.Record{{
			Name: q.Name, Class: dnswire.ClassINET, TTL: 0,
			Data: dnswire.ARData{Addr: src.Addr()},
		}}
	})
	authRtr := netsim.NewRouter("example-auth", addr("192.0.2.2"))
	authRtr.Bind(53, NewAuthServer(w.authZone))
	attach(authRtr, "192.0.2.0/24")

	// Recursive resolver.
	w.resolver = NewRecursiveResolver(addr("10.53.0.53"), addr("198.41.0.4"))
	w.resolver.Persona = PersonaUnbound
	w.resRtr = netsim.NewRouter("resolver", addr("10.53.0.53"))
	w.resRtr.Bind(53, w.resolver)
	attach(w.resRtr, "10.53.0.0/24")

	// Client.
	clientGW := netsim.NewRouter("client-gw", addr("203.0.113.1"))
	w.client = netsim.NewHost("client", addr("203.0.113.2"), netip.Addr{}, clientGW)
	clientGW.AddRoute(pfx("203.0.113.2/32"), w.client)
	clientGW.AddDefaultRoute(w.backbone)
	attach(clientGW, "203.0.113.0/24")
	return w
}

// resolve performs one query from the world's client through the resolver.
func (w *dnsWorld) resolve(t *testing.T, name string, typ dnswire.Type) *dnswire.Message {
	t.Helper()
	query := dnswire.NewQuery(100, dnswire.Name(name), typ, dnswire.ClassINET)
	resps, err := w.client.Exchange(w.net, ap("10.53.0.53:53"), dnswire.MustPack(query), netsim.ExchangeOptions{})
	if err != nil {
		t.Fatalf("resolve %s: %v", name, err)
	}
	m, err := dnswire.Unpack(resps[0].Payload)
	if err != nil {
		t.Fatalf("unpack: %v", err)
	}
	return m
}

func TestRecursiveResolutionWalksTree(t *testing.T) {
	w := buildDNSWorld(t)
	m := w.resolve(t, "www.example.com", dnswire.TypeA)
	if m.Header.RCode != dnswire.RCodeSuccess {
		t.Fatalf("rcode = %s", m.Header.RCode)
	}
	if len(m.Answers) != 1 || m.Answers[0].Data.(dnswire.ARData).Addr != addr("192.0.2.80") {
		t.Errorf("answers = %v", m.Answers)
	}
	if !m.Header.RecursionAvailable {
		t.Error("RA not set")
	}
}

func TestRecursiveResolutionNXDomain(t *testing.T) {
	w := buildDNSWorld(t)
	m := w.resolve(t, "nope.example.com", dnswire.TypeA)
	if m.Header.RCode != dnswire.RCodeNameError {
		t.Errorf("rcode = %s, want NXDOMAIN", m.Header.RCode)
	}
}

func TestRecursiveResolutionCNAMEChase(t *testing.T) {
	w := buildDNSWorld(t)
	m := w.resolve(t, "alias.example.com", dnswire.TypeA)
	if m.Header.RCode != dnswire.RCodeSuccess {
		t.Fatalf("rcode = %s", m.Header.RCode)
	}
	var sawCNAME, sawA bool
	for _, rr := range m.Answers {
		switch rr.Data.(type) {
		case dnswire.CNAMERData:
			sawCNAME = true
		case dnswire.ARData:
			sawA = true
		}
	}
	if !sawCNAME || !sawA {
		t.Errorf("answers = %v, want CNAME chain plus A", m.Answers)
	}
}

func TestRecursiveResolutionCachesAnswers(t *testing.T) {
	w := buildDNSWorld(t)
	events := 0
	w.net.Tap(func(netsim.TraceEvent) { events++ })
	w.resolve(t, "www.example.com", dnswire.TypeA)
	first := events
	events = 0
	w.resolve(t, "www.example.com", dnswire.TypeA)
	if events >= first {
		t.Errorf("cached resolution used %d events, uncached %d — cache not effective", events, first)
	}
}

func TestRecursiveResolverEchoZoneSeesResolverEgress(t *testing.T) {
	w := buildDNSWorld(t)
	m := w.resolve(t, "whoami.example.com", dnswire.TypeA)
	if len(m.Answers) != 1 {
		t.Fatalf("answers = %v", m.Answers)
	}
	if got := m.Answers[0].Data.(dnswire.ARData).Addr; got != addr("10.53.0.53") {
		t.Errorf("whoami echoed %s, want resolver egress 10.53.0.53", got)
	}
}

func TestRecursiveResolverChaosPersona(t *testing.T) {
	w := buildDNSWorld(t)
	query := dnswire.NewChaosTXTQuery(5, "version.bind")
	resps, err := w.client.Exchange(w.net, ap("10.53.0.53:53"), dnswire.MustPack(query), netsim.ExchangeOptions{})
	if err != nil {
		t.Fatal(err)
	}
	m, _ := dnswire.Unpack(resps[0].Payload)
	if s, _ := m.FirstTXT(); s != "unbound 1.9.0" {
		t.Errorf("version.bind = %q", s)
	}
}

func TestRecursiveResolverRefuseAll(t *testing.T) {
	w := buildDNSWorld(t)
	w.resolver.RefuseAll = dnswire.RCodeRefused
	m := w.resolve(t, "www.example.com", dnswire.TypeA)
	if m.Header.RCode != dnswire.RCodeRefused {
		t.Errorf("rcode = %s, want REFUSED", m.Header.RCode)
	}
}

func TestRecursiveResolverBlocklist(t *testing.T) {
	w := buildDNSWorld(t)
	w.resolver.Blocklist = map[dnswire.Name]dnswire.RCode{
		"www.example.com": dnswire.RCodeNameError,
	}
	m := w.resolve(t, "www.example.com", dnswire.TypeA)
	if m.Header.RCode != dnswire.RCodeNameError {
		t.Errorf("rcode = %s, want NXDOMAIN from blocklist", m.Header.RCode)
	}
	m = w.resolve(t, "whoami.example.com", dnswire.TypeA)
	if m.Header.RCode != dnswire.RCodeSuccess {
		t.Errorf("unblocked name rcode = %s", m.Header.RCode)
	}
}

func TestAuthServerRefusesForeignZones(t *testing.T) {
	w := buildDNSWorld(t)
	query := dnswire.NewQuery(6, "example.org", dnswire.TypeA, dnswire.ClassINET)
	resps, err := w.client.Exchange(w.net, ap("192.0.2.2:53"), dnswire.MustPack(query), netsim.ExchangeOptions{})
	if err != nil {
		t.Fatal(err)
	}
	m, _ := dnswire.Unpack(resps[0].Payload)
	if m.Header.RCode != dnswire.RCodeRefused {
		t.Errorf("rcode = %s, want REFUSED", m.Header.RCode)
	}
}

func TestAuthServerReferral(t *testing.T) {
	w := buildDNSWorld(t)
	query := dnswire.NewQuery(7, "www.example.com", dnswire.TypeA, dnswire.ClassINET)
	resps, err := w.client.Exchange(w.net, ap("198.41.0.4:53"), dnswire.MustPack(query), netsim.ExchangeOptions{})
	if err != nil {
		t.Fatal(err)
	}
	m, _ := dnswire.Unpack(resps[0].Payload)
	if len(m.Answers) != 0 || len(m.Authority) == 0 || len(m.Additional) == 0 {
		t.Errorf("referral shape wrong: %s", m)
	}
	if m.Header.Authoritative {
		t.Error("referral marked authoritative")
	}
}

func TestForwarderRelaysAndAnswersVersionBind(t *testing.T) {
	w := buildDNSWorld(t)
	// A forwarder box in front of the resolver, dnsmasq persona.
	fwdRtr := netsim.NewRouter("fwd", addr("172.20.0.1"))
	fwd := NewForwarder(PersonaDnsmasq, addr("172.20.0.1"), ap("10.53.0.53:53"))
	fwdRtr.Bind(53, fwd)
	fwdRtr.AddDefaultRoute(w.backbone)
	w.backbone.AddRoute(pfx("172.20.0.0/24"), fwdRtr)

	// Relay: an IN A query reaches the resolver and comes back.
	query := dnswire.NewQuery(8, "www.example.com", dnswire.TypeA, dnswire.ClassINET)
	resps, err := w.client.Exchange(w.net, ap("172.20.0.1:53"), dnswire.MustPack(query), netsim.ExchangeOptions{})
	if err != nil {
		t.Fatal(err)
	}
	m, _ := dnswire.Unpack(resps[0].Payload)
	if m.Header.ID != 8 || len(m.Answers) == 0 {
		t.Errorf("forwarded answer = %s", m)
	}

	// version.bind answered locally with the dnsmasq string.
	vb := dnswire.NewChaosTXTQuery(9, "version.bind")
	resps, err = w.client.Exchange(w.net, ap("172.20.0.1:53"), dnswire.MustPack(vb), netsim.ExchangeOptions{})
	if err != nil {
		t.Fatal(err)
	}
	m, _ = dnswire.Unpack(resps[0].Payload)
	if s, _ := m.FirstTXT(); s != "dnsmasq-2.85" {
		t.Errorf("version.bind = %q, want dnsmasq persona", s)
	}
}

func TestForwarderForwardUnhandledChaos(t *testing.T) {
	w := buildDNSWorld(t)
	fwdRtr := netsim.NewRouter("fwd", addr("172.20.0.1"))
	fwd := NewForwarder(PersonaSilent, addr("172.20.0.1"), ap("10.53.0.53:53"))
	fwd.ForwardUnhandledChaos = true
	fwdRtr.Bind(53, fwd)
	fwdRtr.AddDefaultRoute(w.backbone)
	w.backbone.AddRoute(pfx("172.20.0.0/24"), fwdRtr)

	// version.bind is forwarded to the resolver, whose persona answers.
	vb := dnswire.NewChaosTXTQuery(10, "version.bind")
	resps, err := w.client.Exchange(w.net, ap("172.20.0.1:53"), dnswire.MustPack(vb), netsim.ExchangeOptions{})
	if err != nil {
		t.Fatal(err)
	}
	m, _ := dnswire.Unpack(resps[0].Payload)
	if s, _ := m.FirstTXT(); s != "unbound 1.9.0" {
		t.Errorf("forwarded version.bind = %q, want upstream's string", s)
	}
}

func TestForwarderWithoutUpstreamServfails(t *testing.T) {
	w := buildDNSWorld(t)
	fwdRtr := netsim.NewRouter("fwd", addr("172.20.0.1"))
	fwd := NewForwarder(PersonaDnsmasq, addr("172.20.0.1"), netip.AddrPort{})
	fwdRtr.Bind(53, fwd)
	fwdRtr.AddDefaultRoute(w.backbone)
	w.backbone.AddRoute(pfx("172.20.0.0/24"), fwdRtr)

	query := dnswire.NewQuery(11, "www.example.com", dnswire.TypeA, dnswire.ClassINET)
	resps, err := w.client.Exchange(w.net, ap("172.20.0.1:53"), dnswire.MustPack(query), netsim.ExchangeOptions{})
	if err != nil {
		t.Fatal(err)
	}
	m, _ := dnswire.Unpack(resps[0].Payload)
	if m.Header.RCode != dnswire.RCodeServerFailure {
		t.Errorf("rcode = %s, want SERVFAIL", m.Header.RCode)
	}
}

func TestResolverUnreachableAuthTimesOut(t *testing.T) {
	w := buildDNSWorld(t)
	// Point the com delegation at a black hole: resolution dies upstream,
	// so the client sees silence (timeout), not an answer.
	rootZone := NewZone("")
	rootZone.Delegate("com", map[dnswire.Name][]netip.Addr{
		"a.gtld-servers.net": {addr("203.0.113.254")}, // routed nowhere
	})
	rootRtr := netsim.NewRouter("root2", addr("198.41.0.4"))
	_ = rootRtr
	// Rebuild: simpler to flush cache and retarget the resolver's hints at
	// a dead address directly.
	w.resolver.FlushCache()
	w.resolver.RootHints = []netip.Addr{addr("203.0.113.254")}
	query := dnswire.NewQuery(12, "www.example.com", dnswire.TypeA, dnswire.ClassINET)
	_, err := w.client.Exchange(w.net, ap("10.53.0.53:53"), dnswire.MustPack(query), netsim.ExchangeOptions{})
	if !errors.Is(err, netsim.ErrTimeout) {
		t.Errorf("err = %v, want timeout", err)
	}
}
