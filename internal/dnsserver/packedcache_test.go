package dnsserver

import (
	"testing"

	"github.com/dnswatch/dnsloc/internal/dnswire"
	"github.com/dnswatch/dnsloc/internal/metrics"
)

// TestPackedAnswerCacheServes: the cache packs a persona's answer once,
// then replays the cached wire with each query's ID patched in.
func TestPackedAnswerCacheServes(t *testing.T) {
	c := NewPackedAnswerCache()

	wire := c.Serve(nil, PersonaDnsmasq, dnswire.NewChaosTXTQuery(5, "version.bind"))
	if wire == nil {
		t.Fatal("persona answers version.bind; cache served nil")
	}
	m, err := dnswire.Unpack(wire)
	if err != nil {
		t.Fatal(err)
	}
	if m.Header.ID != 5 {
		t.Errorf("ID = %d, want the query's 5", m.Header.ID)
	}
	txt1, ok := m.FirstTXT()
	if !ok || txt1 == "" {
		t.Fatal("cached answer carries no TXT")
	}

	// Replay: same question, new ID — must come from the cached wire
	// with only the ID rewritten.
	wire = c.Serve(nil, PersonaDnsmasq, dnswire.NewChaosTXTQuery(6, "version.bind"))
	m, err = dnswire.Unpack(wire)
	if err != nil {
		t.Fatal(err)
	}
	if m.Header.ID != 6 {
		t.Errorf("replayed ID = %d, want 6", m.Header.ID)
	}
	if txt2, _ := m.FirstTXT(); txt2 != txt1 {
		t.Errorf("replayed TXT = %q, want the cached %q", txt2, txt1)
	}
}

// TestPackedAnswerCacheMisses: unanswerable queries and nil caches both
// return nil so callers fall through to their unhandled path.
func TestPackedAnswerCacheMisses(t *testing.T) {
	c := NewPackedAnswerCache()
	q := dnswire.NewQuery(7, "www.example.com", dnswire.TypeA, dnswire.ClassINET)
	if c.Serve(nil, PersonaDnsmasq, q) != nil {
		t.Error("persona does not answer INET A queries; cache served bytes")
	}
	var nilCache *PackedAnswerCache
	if nilCache.Serve(nil, PersonaDnsmasq, dnswire.NewChaosTXTQuery(8, "version.bind")) != nil {
		t.Error("nil cache served bytes")
	}
}

// TestForwarderMetricsRecording: the registered counters record through
// the nil-safe helpers, and a nil registry disables the set entirely.
func TestForwarderMetricsRecording(t *testing.T) {
	if NewForwarderMetrics(nil) != nil {
		t.Error("nil registry should yield nil metrics")
	}
	var disabled *ForwarderMetrics
	disabled.query() // must not panic

	fm := NewForwarderMetrics(metrics.New())
	fm.query()
	fm.query()
	fm.chaosLocal()
	fm.cacheHit()
	fm.cacheMiss()
	fm.forwarded()
	for name, got := range map[string]int64{
		"queries":      fm.Queries.Value(),
		"chaos_local":  fm.ChaosLocal.Value(),
		"cache_hits":   fm.CacheHits.Value(),
		"cache_misses": fm.CacheMisses.Value(),
		"forwarded":    fm.Forwarded.Value(),
	} {
		want := int64(1)
		if name == "queries" {
			want = 2
		}
		if got != want {
			t.Errorf("%s = %d, want %d", name, got, want)
		}
	}
}

// TestAuthServerAddZone: zones attached after construction join the
// longest-origin-match selection.
func TestAuthServerAddZone(t *testing.T) {
	s := NewAuthServer()
	z := NewZone("example.com")
	s.AddZone(z)
	if got := s.bestZone("www.example.com"); got != z {
		t.Errorf("bestZone = %v, want the added zone", got)
	}
	if s.bestZone("www.example.org") != nil {
		t.Error("bestZone matched a foreign origin")
	}
}
