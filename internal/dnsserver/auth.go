package dnsserver

import (
	"sort"

	"github.com/dnswatch/dnsloc/internal/dnswire"
	"github.com/dnswatch/dnsloc/internal/netsim"
)

// AuthServer is an authoritative-only DNS server serving one or more
// zones. It answers from zone data, emits referrals at zone cuts, and
// REFUSEs queries for names it is not authoritative for — it never
// recurses.
type AuthServer struct {
	// Persona answers CHAOS debugging queries.
	Persona ChaosPersona

	zones []*Zone
}

// NewAuthServer creates a server over the given zones.
func NewAuthServer(zones ...*Zone) *AuthServer {
	s := &AuthServer{Persona: ChaosPersona{}}
	s.zones = append(s.zones, zones...)
	return s
}

// AddZone attaches another zone.
func (s *AuthServer) AddZone(z *Zone) { s.zones = append(s.zones, z) }

// bestZone picks the zone with the longest origin matching name.
func (s *AuthServer) bestZone(name dnswire.Name) *Zone {
	var best *Zone
	bestLabels := -1
	for _, z := range s.zones {
		if name.IsSubdomainOf(z.Origin) {
			if n := len(z.Origin.Labels()); n > bestLabels {
				best, bestLabels = z, n
			}
		}
	}
	return best
}

// ServeUDP implements netsim.Service.
func (s *AuthServer) ServeUDP(sc *netsim.ServiceCtx, pkt netsim.Packet) {
	query, err := dnswire.Unpack(pkt.Payload)
	if err != nil || query.Header.Response || len(query.Questions) == 0 {
		return // garbage or not a query: drop silently
	}
	resp := s.handle(query, pkt)
	if resp == nil {
		return
	}
	payload, err := resp.Pack()
	if err != nil {
		payload = dnswire.MustPack(dnswire.NewErrorResponse(query, dnswire.RCodeServerFailure))
	}
	sc.Reply(pkt, payload)
}

// handle computes the response message.
func (s *AuthServer) handle(query *dnswire.Message, pkt netsim.Packet) *dnswire.Message {
	if chaos := s.Persona.Answer(query); chaos != nil {
		return chaos
	}
	q := query.Question()
	if q.Class != dnswire.ClassINET {
		return dnswire.NewErrorResponse(query, dnswire.RCodeNotImplemented)
	}
	zone := s.bestZone(q.Name)
	if zone == nil {
		return dnswire.NewErrorResponse(query, dnswire.RCodeRefused)
	}
	result, rrs, deleg := zone.Lookup(q, pkt.Src)
	resp := dnswire.NewResponse(query, dnswire.RCodeSuccess)
	resp.Header.Authoritative = true
	wantDNSSEC := query.DO() && zone.Signed()
	switch result {
	case LookupAnswer, LookupCNAME:
		resp.Answers = append(resp.Answers, rrs...)
		if wantDNSSEC && len(rrs) > 0 {
			if sig, ok := zone.SignatureFor(rrs[0].Name, rrs[0].Type()); ok {
				resp.Answers = append(resp.Answers, sig)
			}
		}
		if result == LookupCNAME {
			// Chase the alias within our own authority, as real auths do.
			if cname, ok := rrs[0].Data.(dnswire.CNAMERData); ok {
				s.chaseCNAME(resp, cname.Target, q, pkt, 0)
			}
		}
	case LookupNoData:
		resp.Authority = append(resp.Authority, zone.SOARecord())
	case LookupNXDomain:
		resp.Header.RCode = dnswire.RCodeNameError
		resp.Authority = append(resp.Authority, zone.SOARecord())
	case LookupDelegation:
		resp.Header.Authoritative = false
		appendReferral(resp, deleg)
	case LookupOutOfZone:
		resp.Header.RCode = dnswire.RCodeRefused
	}
	return resp
}

// chaseCNAME follows in-bailiwick aliases up to a small depth.
func (s *AuthServer) chaseCNAME(resp *dnswire.Message, target dnswire.Name, q dnswire.Question, pkt netsim.Packet, depth int) {
	if depth > 4 {
		return
	}
	zone := s.bestZone(target)
	if zone == nil {
		return
	}
	result, rrs, _ := zone.Lookup(dnswire.Question{Name: target, Type: q.Type, Class: q.Class}, pkt.Src)
	switch result {
	case LookupAnswer:
		resp.Answers = append(resp.Answers, rrs...)
	case LookupCNAME:
		resp.Answers = append(resp.Answers, rrs...)
		if cname, ok := rrs[0].Data.(dnswire.CNAMERData); ok {
			s.chaseCNAME(resp, cname.Target, q, pkt, depth+1)
		}
	}
}

// appendReferral fills the authority and additional sections for a
// delegation.
func appendReferral(resp *dnswire.Message, d *Delegation) {
	for _, host := range d.NS {
		resp.Authority = append(resp.Authority, dnswire.Record{
			Name: d.Cut, Class: dnswire.ClassINET, TTL: 172800,
			Data: dnswire.NSRData{Host: host},
		})
	}
	hosts := make([]dnswire.Name, 0, len(d.Glue))
	for host := range d.Glue {
		hosts = append(hosts, host)
	}
	sort.Slice(hosts, func(i, j int) bool { return hosts[i] < hosts[j] })
	for _, host := range hosts {
		for _, a := range d.Glue[host] {
			var data dnswire.RData
			if a.Is4() {
				data = dnswire.ARData{Addr: a}
			} else {
				data = dnswire.AAAARData{Addr: a}
			}
			resp.Additional = append(resp.Additional, dnswire.Record{
				Name: host, Class: dnswire.ClassINET, TTL: 172800, Data: data,
			})
		}
	}
}
