package dnsserver

import (
	"sort"

	"github.com/dnswatch/dnsloc/internal/dnssec"
	"github.com/dnswatch/dnsloc/internal/dnswire"
)

// Sign signs every static RRset in the zone with key: it publishes the
// DNSKEY at the origin and stores one RRSIG per (name, type) set, which
// the auth server attaches to answers carrying the DO bit. Dynamic
// names cannot be pre-signed and stay unsigned (as real
// source-address-echo zones are). Call Sign after all static records
// and delegation DS records have been added.
func (z *Zone) Sign(key *dnssec.Key) error {
	z.key = key
	z.MustAdd(key.DNSKEYRecord(3600))
	z.sigs = make(map[dnswire.Name]map[dnswire.Type]dnswire.Record)

	// Deterministic sweep order.
	names := make([]dnswire.Name, 0, len(z.records))
	for name := range z.records {
		names = append(names, name)
	}
	sort.Slice(names, func(i, j int) bool { return names[i] < names[j] })
	for _, name := range names {
		types := make([]dnswire.Type, 0, len(z.records[name]))
		for typ := range z.records[name] {
			types = append(types, typ)
		}
		sort.Slice(types, func(i, j int) bool { return types[i] < types[j] })
		for _, typ := range types {
			if typ == dnswire.TypeRRSIG {
				continue
			}
			sig, err := dnssec.SignRRset(z.records[name][typ], key)
			if err != nil {
				return err
			}
			if z.sigs[name] == nil {
				z.sigs[name] = make(map[dnswire.Type]dnswire.Record)
			}
			z.sigs[name][typ] = sig
		}
	}
	return nil
}

// Signed reports whether the zone carries signatures.
func (z *Zone) Signed() bool { return z.key != nil }

// SignatureFor returns the RRSIG covering (name, typ), if one exists.
func (z *Zone) SignatureFor(name dnswire.Name, typ dnswire.Type) (dnswire.Record, bool) {
	if z.sigs == nil {
		return dnswire.Record{}, false
	}
	sig, ok := z.sigs[name.Canonical()][typ]
	return sig, ok
}
