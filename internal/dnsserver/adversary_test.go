package dnsserver

import (
	"net/netip"
	"testing"

	"github.com/dnswatch/dnsloc/internal/dnswire"
	"github.com/dnswatch/dnsloc/internal/netsim"
)

var (
	advSelf    = netip.MustParseAddr("100.64.0.53")
	advTarget  = netip.MustParseAddr("8.8.8.8")
	advClient  = netip.MustParseAddr("203.0.113.7")
	advClient2 = netip.MustParseAddr("203.0.113.8")
	advBogon   = netip.MustParseAddr("192.0.2.53")
)

// advPacket builds a diverted packet: sent by client to origDst, DNATed
// to the adversary's device (self).
func advPacket(client, origDst netip.Addr) netsim.Packet {
	return netsim.Packet{
		Src:     netip.AddrPortFrom(client, 5353),
		Dst:     netip.AddrPortFrom(advSelf, 53),
		OrigDst: netip.AddrPortFrom(origDst, 53),
	}
}

// replayAdversary answers every known target with a fixed genuine TXT.
func replayAdversary(level int) *Adversary {
	return &Adversary{
		Level: level,
		Seed:  42,
		Genuine: func(target netip.Addr, name dnswire.Name) (string, dnswire.RCode, bool) {
			if target != advTarget {
				return "", 0, false
			}
			if IsIdentityQuery(name) {
				return "genuine-site", dnswire.RCodeNotImplemented, true
			}
			return "", dnswire.RCodeNotImplemented, true
		},
	}
}

func chaosTXT(t *testing.T, m *dnswire.Message) string {
	t.Helper()
	if m == nil {
		t.Fatal("nil response")
	}
	s, ok := m.FirstTXT()
	if !ok {
		t.Fatalf("response carries no TXT: %v", m)
	}
	return s
}

// TestChaosAnswerHonestPaths pins every gate that must fall through to
// the honest persona: the adversary only ever tampers with CHAOS
// debugging queries on *diverted* flows.
func TestChaosAnswerHonestPaths(t *testing.T) {
	query := dnswire.NewChaosTXTQuery(1, "id.server")
	diverted := advPacket(advClient, advTarget)
	cases := []struct {
		name string
		adv  *Adversary
		q    *dnswire.Message
		pkt  netsim.Packet
	}{
		{"nil adversary", nil, query, diverted},
		{"level zero", &Adversary{Level: 0}, query, diverted},
		{"no conntrack original destination", replayAdversary(1), query, netsim.Packet{
			Src: netip.AddrPortFrom(advClient, 5353),
			Dst: netip.AddrPortFrom(advSelf, 53),
		}},
		{"query addressed to the device itself", replayAdversary(1), query, advPacket(advClient, advSelf)},
		{"INET query on a diverted flow", replayAdversary(1),
			dnswire.NewQuery(2, "example.com", dnswire.TypeA, dnswire.ClassINET), diverted},
		{"CHAOS but not a debugging name", replayAdversary(1),
			dnswire.NewChaosTXTQuery(3, "not.a.debug.name"), diverted},
		{"unknown target with no forgery", replayAdversary(2), query,
			advPacket(advClient, netip.MustParseAddr("198.51.100.9"))},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			resp, drop := tc.adv.ChaosAnswer(tc.q, tc.pkt, advSelf)
			if resp != nil || drop {
				t.Errorf("ChaosAnswer = (%v, %v), want honest fall-through (nil, false)", resp, drop)
			}
		})
	}
}

// TestChaosAnswerReplay: at L1 the adversary answers a diverted CHAOS
// query exactly as the original target would have — TXT when the target
// answers, the target's error rcode when it does not.
func TestChaosAnswerReplay(t *testing.T) {
	adv := replayAdversary(1)

	resp, drop := adv.ChaosAnswer(dnswire.NewChaosTXTQuery(1, "id.server"), advPacket(advClient, advTarget), advSelf)
	if drop {
		t.Fatal("replay dropped the query")
	}
	if got := chaosTXT(t, resp); got != "genuine-site" {
		t.Errorf("replayed identity = %q, want genuine-site", got)
	}

	resp, drop = adv.ChaosAnswer(dnswire.NewChaosTXTQuery(2, "version.bind"), advPacket(advClient, advTarget), advSelf)
	if drop {
		t.Fatal("replay dropped the query")
	}
	if resp == nil || resp.Header.RCode != dnswire.RCodeNotImplemented {
		t.Errorf("replayed error = %v, want NOTIMP response", resp)
	}
	if _, ok := resp.FirstTXT(); ok {
		t.Error("error replay carries TXT data")
	}
}

// TestChaosAnswerForge: at L2 forgeries are stable for retransmissions
// of one query (same ID) and fresh for new detector rounds (new ID) —
// the drift signal's hook. A declined forgery falls back to replay.
func TestChaosAnswerForge(t *testing.T) {
	adv := replayAdversary(2)
	adv.Forge = func(target netip.Addr, name dnswire.Name, draw uint64) (string, bool) {
		if !IsIdentityQuery(name) {
			return "", false
		}
		return forgeLabel(draw), true
	}

	pkt := advPacket(advClient, advTarget)
	first := chaosTXT(t, mustAnswer(t, adv, dnswire.NewChaosTXTQuery(100, "id.server"), pkt))
	retrans := chaosTXT(t, mustAnswer(t, adv, dnswire.NewChaosTXTQuery(100, "id.server"), pkt))
	if first != retrans {
		t.Errorf("retransmission saw a different forgery: %q vs %q", first, retrans)
	}
	fresh := chaosTXT(t, mustAnswer(t, adv, dnswire.NewChaosTXTQuery(101, "id.server"), pkt))
	if fresh == first {
		t.Errorf("fresh query ID saw the same forgery %q; drift has nothing to catch", fresh)
	}

	// version.bind: Forge declines, so the genuine error is replayed.
	resp := mustAnswer(t, adv, dnswire.NewChaosTXTQuery(102, "version.bind"), pkt)
	if resp.Header.RCode != dnswire.RCodeNotImplemented {
		t.Errorf("declined forgery rcode = %v, want replayed NOTIMP", resp.Header.RCode)
	}
}

// forgeLabel renders a draw for the forge tests.
func forgeLabel(draw uint64) string {
	const hex = "0123456789abcdef"
	b := make([]byte, 0, 16)
	for i := 0; i < 16; i++ {
		b = append(b, hex[draw&0xf])
		draw >>= 4
	}
	return string(b)
}

func mustAnswer(t *testing.T, adv *Adversary, q *dnswire.Message, pkt netsim.Packet) *dnswire.Message {
	t.Helper()
	resp, drop := adv.ChaosAnswer(q, pkt, advSelf)
	if drop {
		t.Fatal("query dropped")
	}
	if resp == nil {
		t.Fatal("adversary fell through to honest persona")
	}
	return resp
}

// TestChaosAnswerRateLimit: at L4 each client gets ChaosBudget answered
// CHAOS queries per device, then silence. Budgets are per (device,
// client): one client exhausting its allowance never affects another.
func TestChaosAnswerRateLimit(t *testing.T) {
	adv := replayAdversary(4)
	adv.ChaosBudget = 2
	pkt := advPacket(advClient, advTarget)

	for i := 0; i < 2; i++ {
		resp, drop := adv.ChaosAnswer(dnswire.NewChaosTXTQuery(uint16(i), "id.server"), pkt, advSelf)
		if drop || resp == nil {
			t.Fatalf("query %d within budget: resp=%v drop=%v", i, resp, drop)
		}
	}
	resp, drop := adv.ChaosAnswer(dnswire.NewChaosTXTQuery(9, "id.server"), pkt, advSelf)
	if !drop || resp != nil {
		t.Fatalf("query past budget: resp=%v drop=%v, want silent drop", resp, drop)
	}

	// A different client starts with a fresh budget.
	other := advPacket(advClient2, advTarget)
	resp, drop = adv.ChaosAnswer(dnswire.NewChaosTXTQuery(10, "id.server"), other, advSelf)
	if drop || resp == nil {
		t.Fatalf("second client's first query: resp=%v drop=%v, want answered", resp, drop)
	}

	// Non-diverted queries never touch the budget.
	direct := advPacket(advClient, advSelf)
	if resp, drop := adv.ChaosAnswer(dnswire.NewChaosTXTQuery(11, "id.server"), direct, advSelf); resp != nil || drop {
		t.Errorf("direct query hit the adversary: resp=%v drop=%v", resp, drop)
	}
}

// TestChaosAnswerDefaultBudget: a zero ChaosBudget means
// DefaultChaosBudget, not zero tokens.
func TestChaosAnswerDefaultBudget(t *testing.T) {
	adv := replayAdversary(4)
	pkt := advPacket(advClient, advTarget)
	answered := 0
	for i := 0; i < DefaultChaosBudget+3; i++ {
		if resp, drop := adv.ChaosAnswer(dnswire.NewChaosTXTQuery(uint16(i), "id.server"), pkt, advSelf); resp != nil && !drop {
			answered++
		}
	}
	if answered != DefaultChaosBudget {
		t.Errorf("answered %d queries, want DefaultChaosBudget=%d", answered, DefaultChaosBudget)
	}
}

// TestAllowBogon: below L3 and for non-bogon or non-diverted traffic
// everything passes; at L3 a client's fate is a deterministic function
// of (seed, device, client), stable across retries and instances.
func TestAllowBogon(t *testing.T) {
	isBogon := func(a netip.Addr) bool { return a == advBogon }
	mk := func(level int, seed int64) *Adversary {
		return &Adversary{Level: level, Seed: seed, Bogon: isBogon}
	}
	divertedBogon := advPacket(advClient, advBogon)

	if !mk(2, 1).AllowBogon(divertedBogon, advSelf) {
		t.Error("L2 gated a bogon query; gating starts at L3")
	}
	if !mk(3, 1).AllowBogon(advPacket(advClient, advTarget), advSelf) {
		t.Error("non-bogon destination gated")
	}
	if !mk(3, 1).AllowBogon(advPacket(advClient, advSelf), advSelf) {
		t.Error("non-diverted query gated")
	}
	var nilAdv *Adversary
	if !nilAdv.AllowBogon(divertedBogon, advSelf) {
		t.Error("nil adversary gated traffic")
	}

	// Determinism: same (seed, client) always rolls the same fate, and
	// across many clients both fates occur.
	allowed := 0
	for i := 0; i < 64; i++ {
		client := netip.AddrFrom4([4]byte{203, 0, 113, byte(i)})
		pkt := advPacket(client, advBogon)
		first := mk(3, 7).AllowBogon(pkt, advSelf)
		for try := 0; try < 3; try++ {
			if got := mk(3, 7).AllowBogon(pkt, advSelf); got != first {
				t.Fatalf("client %v fate flipped across instances: %v then %v", client, first, got)
			}
		}
		if first {
			allowed++
		}
	}
	if allowed == 0 || allowed == 64 {
		t.Errorf("bogon gate allowed %d/64 clients; want a selective split", allowed)
	}
}

// TestAdversaryDrawsAreSeedKeyed: changing the seed moves both draw
// chains; keeping it fixes them.
func TestAdversaryDrawsAreSeedKeyed(t *testing.T) {
	a := &Adversary{Seed: 1}
	b := &Adversary{Seed: 1}
	c := &Adversary{Seed: 2}
	if a.forgeDraw(advTarget, "id.server", 7) != b.forgeDraw(advTarget, "id.server", 7) {
		t.Error("same seed, different forge draw")
	}
	if a.forgeDraw(advTarget, "id.server", 7) == c.forgeDraw(advTarget, "id.server", 7) {
		t.Error("different seed, same forge draw")
	}
	if a.flowDraw(advTagBogon, advSelf, advClient) != b.flowDraw(advTagBogon, advSelf, advClient) {
		t.Error("same seed, different flow draw")
	}
	if d := a.flowDraw(advTagBogon, advSelf, advClient); d < 0 || d >= 1 {
		t.Errorf("flow draw %v outside [0, 1)", d)
	}
}
