package backbone

import (
	"net/netip"
	"testing"

	"github.com/dnswatch/dnsloc/internal/dnswire"
	"github.com/dnswatch/dnsloc/internal/netsim"
	"github.com/dnswatch/dnsloc/internal/publicdns"
)

// TestTraceOpenDNSv6 is a diagnostic trace; it only fails if the
// exchange fails, and logs the packet path for inspection with -v.
func TestTraceOpenDNSv6(t *testing.T) {
	h := buildHome(t, nil, nil)
	h.net.Tap(func(e netsim.TraceEvent) { t.Log(e.String()) })
	c := publicdns.Lookup(publicdns.OpenDNS)
	_, err := h.probe.Exchange(h.net,
		netip.AddrPortFrom(c.V6[0], 53),
		dnswire.MustPack(c.Location.Message(99)),
		netsim.ExchangeOptions{})
	if err != nil {
		t.Fatalf("opendns v6: %v", err)
	}
}
