package backbone

import (
	"errors"
	"net/netip"
	"testing"

	"github.com/dnswatch/dnsloc/internal/bogon"
	"github.com/dnswatch/dnsloc/internal/cpe"
	"github.com/dnswatch/dnsloc/internal/dnsserver"
	"github.com/dnswatch/dnsloc/internal/dnswire"
	"github.com/dnswatch/dnsloc/internal/isp"
	"github.com/dnswatch/dnsloc/internal/netsim"
	"github.com/dnswatch/dnsloc/internal/publicdns"
)

// home is a fully-wired test home: backbone + one ISP + one CPE + probe.
type home struct {
	net   *netsim.Network
	bb    *Backbone
	isp   *isp.Network
	cpe   *cpe.Device
	probe *netsim.Host
	addrs isp.HomeAddrs
}

// buildHome assembles a home. mutate may adjust the CPE config before it
// is built; mb configures the segment middlebox.
func buildHome(t *testing.T, mb *isp.MiddleboxSpec, mutate func(*cpe.Config)) *home {
	t.Helper()
	h := &home{net: netsim.NewNetwork()}
	h.bb = Build(h.net)
	h.isp = h.bb.AttachISP(isp.Config{
		ASN:             7922,
		Name:            "Comcast",
		Country:         "US",
		Region:          publicdns.RegionNA,
		PrefixV4:        netip.MustParsePrefix("96.120.0.0/16"),
		PrefixV6:        netip.MustParsePrefix("2601:db00::/48"),
		ResolverPersona: dnsserver.PersonaUnbound,
	})
	seg := h.isp.AddSegment(mb)
	h.addrs = h.isp.AllocHome(seg, true)
	cfg := cpe.NewPlain("home-cpe", h.addrs.LANPrefix4, h.addrs.WANv4, h.isp.ResolverAddrPort())
	cfg.LANAddr6 = firstV6(h.addrs.LANPrefix6)
	cfg.LANPrefix6 = h.addrs.LANPrefix6
	cfg.WANAddr6 = h.addrs.WANv6
	if mutate != nil {
		mutate(&cfg)
	}
	h.cpe = cpe.Build(cfg)
	h.isp.AttachCPE(seg, h.cpe, h.addrs)
	h.probe = h.cpe.AttachHost("probe", 0)
	return h
}

func firstV6(p netip.Prefix) netip.Addr {
	a := p.Addr().As16()
	a[15] |= 1
	return netip.AddrFrom16(a)
}

// ask sends one DNS message to dst and returns the parsed answer.
func (h *home) ask(t *testing.T, dst netip.Addr, m *dnswire.Message) (*dnswire.Message, error) {
	t.Helper()
	resps, err := h.probe.Exchange(h.net, netip.AddrPortFrom(dst, 53), dnswire.MustPack(m), netsim.ExchangeOptions{})
	if err != nil {
		return nil, err
	}
	parsed, err := dnswire.Unpack(resps[0].Payload)
	if err != nil {
		t.Fatalf("unpack response: %v", err)
	}
	return parsed, nil
}

func TestCleanHomeLocationQueriesAreStandard(t *testing.T) {
	h := buildHome(t, nil, nil)
	for _, id := range publicdns.All {
		c := publicdns.Lookup(id)
		for _, dst := range c.V4 {
			m, err := h.ask(t, dst, c.Location.Message(1))
			if err != nil {
				t.Fatalf("%s %s: %v", id, dst, err)
			}
			answer, ok := m.FirstTXT()
			if !ok {
				t.Fatalf("%s %s: no TXT in %s", id, dst, m)
			}
			if !c.ValidateLocationAnswer(answer) {
				t.Errorf("%s %s: answer %q not standard", id, dst, answer)
			}
		}
		for _, dst := range c.V6 {
			m, err := h.ask(t, dst, c.Location.Message(2))
			if err != nil {
				t.Fatalf("%s %s (v6): %v", id, dst, err)
			}
			if answer, _ := m.FirstTXT(); !c.ValidateLocationAnswer(answer) {
				t.Errorf("%s %s (v6): answer %q not standard", id, dst, answer)
			}
		}
	}
}

func TestCleanHomeWhoamiReturnsOperatorEgress(t *testing.T) {
	h := buildHome(t, nil, nil)
	for _, id := range publicdns.All {
		c := publicdns.Lookup(id)
		q := dnswire.NewQuery(3, publicdns.WhoamiDomain, dnswire.TypeA, dnswire.ClassINET)
		m, err := h.ask(t, c.V4[0], q)
		if err != nil {
			t.Fatalf("%s whoami: %v", id, err)
		}
		if len(m.Answers) != 1 {
			t.Fatalf("%s whoami: %s", id, m)
		}
		got := m.Answers[0].Data.(dnswire.ARData).Addr
		if !c.InEgress(got) {
			t.Errorf("%s whoami = %s, not in operator egress", id, got)
		}
	}
}

func TestCleanHomeBogonQueriesTimeOut(t *testing.T) {
	h := buildHome(t, nil, nil)
	q := dnswire.NewQuery(4, publicdns.CanaryDomain, dnswire.TypeA, dnswire.ClassINET)
	if _, err := h.ask(t, bogon.ProbeV4, q); !errors.Is(err, netsim.ErrTimeout) {
		t.Errorf("v4 bogon query: err = %v, want timeout", err)
	}
	if _, err := h.ask(t, bogon.ProbeV6, q); !errors.Is(err, netsim.ErrTimeout) {
		t.Errorf("v6 bogon query: err = %v, want timeout", err)
	}
}

func TestCleanHomeCPEVersionBindTimesOut(t *testing.T) {
	h := buildHome(t, nil, nil)
	vb := dnswire.NewChaosTXTQuery(5, "version.bind")
	if _, err := h.ask(t, h.addrs.WANv4, vb); !errors.Is(err, netsim.ErrTimeout) {
		t.Errorf("version.bind to closed CPE WAN port: err = %v, want timeout", err)
	}
}

func TestXB6HomeInterceptsEverything(t *testing.T) {
	h := buildHome(t, nil, func(cfg *cpe.Config) {
		xb6 := cpe.NewXB6(cfg.Name, cfg.LANPrefix, cfg.WANAddr, cfg.Upstream)
		cfg.Persona = xb6.Persona
		cfg.Intercept = xb6.Intercept
	})

	// Location queries come back non-standard: the ISP resolver answers.
	cf := publicdns.Lookup(publicdns.Cloudflare)
	m, err := h.ask(t, cf.V4[0], cf.Location.Message(6))
	if err != nil {
		t.Fatal(err)
	}
	answer, _ := m.FirstTXT()
	if cf.ValidateLocationAnswer(answer) {
		t.Errorf("intercepted id.server answer %q still standard", answer)
	}

	// version.bind: CPE public IP and all resolvers agree — the §3.2
	// signature of CPE interception.
	vb := dnswire.NewChaosTXTQuery(7, "version.bind")
	mCPE, err := h.ask(t, h.addrs.WANv4, vb)
	if err != nil {
		t.Fatalf("version.bind to CPE WAN: %v", err)
	}
	wantStr, _ := mCPE.FirstTXT()
	if wantStr != "dnsmasq-2.78" {
		t.Fatalf("CPE version.bind = %q", wantStr)
	}
	for _, id := range publicdns.All {
		c := publicdns.Lookup(id)
		mr, err := h.ask(t, c.V4[0], dnswire.NewChaosTXTQuery(8, "version.bind"))
		if err != nil {
			t.Fatalf("%s version.bind: %v", id, err)
		}
		got, _ := mr.FirstTXT()
		if got != wantStr {
			t.Errorf("%s version.bind = %q, want CPE string %q", id, got, wantStr)
		}
	}

	// whoami resolves correctly (transparent) but via the ISP resolver.
	q := dnswire.NewQuery(9, publicdns.WhoamiDomain, dnswire.TypeA, dnswire.ClassINET)
	m, err = h.ask(t, cf.V4[0], q)
	if err != nil {
		t.Fatal(err)
	}
	got := m.Answers[0].Data.(dnswire.ARData).Addr
	if got != h.isp.ResolverAddr {
		t.Errorf("whoami = %s, want ISP resolver egress %s", got, h.isp.ResolverAddr)
	}

	// Spoofing: the response claimed to come from Cloudflare.
	resps, err := h.probe.Exchange(h.net,
		netip.AddrPortFrom(cf.V4[0], 53),
		dnswire.MustPack(dnswire.NewQuery(10, "google.com", dnswire.TypeA, dnswire.ClassINET)),
		netsim.ExchangeOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if resps[0].Src.Addr() != cf.V4[0] {
		t.Errorf("response source = %s, want spoofed %s", resps[0].Src.Addr(), cf.V4[0])
	}

	// IPv6 is NOT intercepted by the XB6 (Table 4's v4/v6 asymmetry).
	m, err = h.ask(t, cf.V6[0], cf.Location.Message(11))
	if err != nil {
		t.Fatal(err)
	}
	if answer, _ := m.FirstTXT(); !cf.ValidateLocationAnswer(answer) {
		t.Errorf("v6 id.server %q should be standard on an XB6 home", answer)
	}
}

func TestISPMiddleboxInterception(t *testing.T) {
	mb := &isp.MiddleboxSpec{
		Rules:           []isp.MiddleboxRule{{All: true}},
		InterceptBogons: true,
	}
	h := buildHome(t, mb, nil)

	// Location query diverted to the ISP resolver.
	g := publicdns.Lookup(publicdns.Google)
	m, err := h.ask(t, g.V4[0], g.Location.Message(12))
	if err != nil {
		t.Fatal(err)
	}
	answer, _ := m.FirstTXT()
	if g.ValidateLocationAnswer(answer) {
		t.Errorf("intercepted myaddr answer %q still standard", answer)
	}
	// The alternate resolver really recursed: the echoed address is the
	// ISP resolver egress.
	if answer != h.isp.ResolverAddr.String() {
		t.Errorf("myaddr echo = %q, want ISP resolver %s", answer, h.isp.ResolverAddr)
	}

	// version.bind to the CPE public IP times out (CPE clean, port
	// filtered); to resolvers it gets the ISP resolver persona. That
	// mismatch rules out the CPE.
	vb := dnswire.NewChaosTXTQuery(13, "version.bind")
	if _, err := h.ask(t, h.addrs.WANv4, vb); !errors.Is(err, netsim.ErrTimeout) {
		t.Errorf("CPE version.bind err = %v, want timeout", err)
	}
	mr, err := h.ask(t, g.V4[0], dnswire.NewChaosTXTQuery(14, "version.bind"))
	if err != nil {
		t.Fatal(err)
	}
	if got, _ := mr.FirstTXT(); got != "unbound 1.9.0" {
		t.Errorf("resolver version.bind via middlebox = %q", got)
	}

	// Bogon query answered: interception is inside the ISP (§3.3).
	q := dnswire.NewQuery(15, publicdns.CanaryDomain, dnswire.TypeA, dnswire.ClassINET)
	m, err = h.ask(t, bogon.ProbeV4, q)
	if err != nil {
		t.Fatalf("bogon query: %v", err)
	}
	if len(m.Answers) == 0 || m.Answers[0].Data.(dnswire.ARData).Addr != publicdns.CanaryAnswer {
		t.Errorf("bogon query answer = %s", m)
	}
}

func TestISPMiddleboxThatIgnoresBogons(t *testing.T) {
	mb := &isp.MiddleboxSpec{
		Rules: []isp.MiddleboxRule{{All: true}},
		// InterceptBogons false: bogon queries pass the middlebox and die
		// at the border — the "unknown location" outcome.
	}
	h := buildHome(t, mb, nil)
	q := dnswire.NewQuery(16, publicdns.CanaryDomain, dnswire.TypeA, dnswire.ClassINET)
	if _, err := h.ask(t, bogon.ProbeV4, q); !errors.Is(err, netsim.ErrTimeout) {
		t.Errorf("bogon query err = %v, want timeout", err)
	}
}

func TestMiddleboxRefusingResolver(t *testing.T) {
	mb := &isp.MiddleboxSpec{
		Rules: []isp.MiddleboxRule{{All: true, UseRefusing: true}},
	}
	h := buildHome(t, mb, nil)
	g := publicdns.Lookup(publicdns.Google)
	m, err := h.ask(t, g.V4[0], g.Location.Message(17))
	if err != nil {
		t.Fatal(err)
	}
	if m.Header.RCode != dnswire.RCodeRefused {
		t.Errorf("rcode = %s, want REFUSED (status-modified interceptor)", m.Header.RCode)
	}
}

func TestMiddleboxSelectiveTargets(t *testing.T) {
	g := publicdns.Lookup(publicdns.Google)
	cf := publicdns.Lookup(publicdns.Cloudflare)
	mb := &isp.MiddleboxSpec{
		Rules: []isp.MiddleboxRule{{Targets: g.V4}}, // only Google intercepted
	}
	h := buildHome(t, mb, nil)
	m, err := h.ask(t, g.V4[0], g.Location.Message(18))
	if err != nil {
		t.Fatal(err)
	}
	if answer, _ := m.FirstTXT(); g.ValidateLocationAnswer(answer) {
		t.Error("google should be intercepted")
	}
	m, err = h.ask(t, cf.V4[0], cf.Location.Message(19))
	if err != nil {
		t.Fatal(err)
	}
	if answer, _ := m.FirstTXT(); !cf.ValidateLocationAnswer(answer) {
		t.Errorf("cloudflare answer %q should be standard", answer)
	}
}

func TestOpenForwarderCPEAnswersButIsNotInterceptor(t *testing.T) {
	h := buildHome(t, nil, func(cfg *cpe.Config) {
		cfg.WANPort53Open = true
	})
	// version.bind to the CPE public IP answers with the CPE persona...
	vb := dnswire.NewChaosTXTQuery(20, "version.bind")
	m, err := h.ask(t, h.addrs.WANv4, vb)
	if err != nil {
		t.Fatal(err)
	}
	cpeStr, _ := m.FirstTXT()
	if cpeStr != "dnsmasq-2.85" {
		t.Fatalf("CPE version.bind = %q", cpeStr)
	}
	// ...but resolver-bound version.bind reaches the real operators:
	// Quad9 answers its own string, others NOTIMP. No match with the CPE
	// string, so the CPE is correctly not implicated.
	q9 := publicdns.Lookup(publicdns.Quad9)
	mr, err := h.ask(t, q9.V4[0], dnswire.NewChaosTXTQuery(21, "version.bind"))
	if err != nil {
		t.Fatal(err)
	}
	q9Str, _ := mr.FirstTXT()
	if q9Str == cpeStr {
		t.Errorf("quad9 and CPE version.bind both %q; test world misconfigured", q9Str)
	}
	if q9Str != "Q9-P-7.5" {
		t.Errorf("quad9 version.bind = %q", q9Str)
	}
	cf := publicdns.Lookup(publicdns.Cloudflare)
	mr, err = h.ask(t, cf.V4[0], dnswire.NewChaosTXTQuery(22, "version.bind"))
	if err != nil {
		t.Fatal(err)
	}
	if mr.Header.RCode != dnswire.RCodeNotImplemented {
		t.Errorf("cloudflare version.bind rcode = %s, want NOTIMP", mr.Header.RCode)
	}
}

func TestAnycastSelectsRegionalSite(t *testing.T) {
	// A European ISP's probes reach the FRA site, not IAD.
	h := &home{net: netsim.NewNetwork()}
	h.bb = Build(h.net)
	h.isp = h.bb.AttachISP(isp.Config{
		ASN: 3320, Name: "Deutsche Telekom", Country: "DE",
		Region:          publicdns.RegionEU,
		PrefixV4:        netip.MustParsePrefix("91.0.0.0/16"),
		ResolverPersona: dnsserver.PersonaPowerDNS,
	})
	seg := h.isp.AddSegment(nil)
	h.addrs = h.isp.AllocHome(seg, false)
	cfg := cpe.NewPlain("de-cpe", h.addrs.LANPrefix4, h.addrs.WANv4, h.isp.ResolverAddrPort())
	h.cpe = cpe.Build(cfg)
	h.isp.AttachCPE(seg, h.cpe, h.addrs)
	h.probe = h.cpe.AttachHost("de-probe", 0)

	cf := publicdns.Lookup(publicdns.Cloudflare)
	m, err := h.ask(t, cf.V4[0], cf.Location.Message(23))
	if err != nil {
		t.Fatal(err)
	}
	if answer, _ := m.FirstTXT(); answer != "FRA" {
		t.Errorf("EU probe got site %q, want FRA", answer)
	}
}

func TestCPEIntercepted6(t *testing.T) {
	// A CPE that also intercepts v6 traffic to Google.
	g := publicdns.Lookup(publicdns.Google)
	h := buildHome(t, nil, func(cfg *cpe.Config) {
		cfg.Persona = dnsserver.PersonaDnsmasq
		cfg.Intercept = cpe.InterceptSpec{AllV4: true, TargetsV6: g.V6}
	})
	m, err := h.ask(t, g.V6[0], g.Location.Message(24))
	if err != nil {
		t.Fatal(err)
	}
	if answer, _ := m.FirstTXT(); g.ValidateLocationAnswer(answer) {
		t.Errorf("v6 google location answer %q should be intercepted", answer)
	}
	// Cloudflare v6 untouched.
	cf := publicdns.Lookup(publicdns.Cloudflare)
	m, err = h.ask(t, cf.V6[0], cf.Location.Message(25))
	if err != nil {
		t.Fatal(err)
	}
	if answer, _ := m.FirstTXT(); !cf.ValidateLocationAnswer(answer) {
		t.Errorf("v6 cloudflare answer %q should be standard", answer)
	}
}
