// Package backbone assembles the global part of the simulated Internet:
// a core router, regional transit routers, the DNS delegation tree
// (root, com TLD, and the authoritative zones the study depends on),
// and the anycast deployments of the four public resolver operators.
// ISPs attach to their regional transit; everything else is already
// wired when Build returns.
package backbone

import (
	"fmt"
	"net/netip"
	"time"

	"github.com/dnswatch/dnsloc/internal/dnssec"
	"github.com/dnswatch/dnsloc/internal/dnsserver"
	"github.com/dnswatch/dnsloc/internal/dnswire"
	"github.com/dnswatch/dnsloc/internal/isp"
	"github.com/dnswatch/dnsloc/internal/netsim"
	"github.com/dnswatch/dnsloc/internal/publicdns"
)

// Well-known infrastructure addresses.
var (
	// RootAddr is the (single) root nameserver.
	RootAddr = netip.MustParseAddr("198.41.0.4")
	// ComTLDAddr is the com gTLD server.
	ComTLDAddr = netip.MustParseAddr("192.5.6.30")

	akamaiAuthAddr  = netip.MustParseAddr("45.33.1.2")
	googleAuthAddr  = netip.MustParseAddr("45.33.2.2")
	opendnsAuthAddr = netip.MustParseAddr("45.33.3.2")
	canaryAuthAddr  = netip.MustParseAddr("45.33.4.2")
)

// Backbone is the built global topology.
type Backbone struct {
	Net  *netsim.Network
	Core *netsim.Router

	// Regional transit routers, one per region.
	Regional map[publicdns.Region]*netsim.Router

	// Sites indexes each operator's anycast sites by region.
	Sites map[publicdns.ID]map[publicdns.Region]publicdns.Site

	// Resolvers holds the site resolver engines, for tests and
	// cache-flushing between experiment phases.
	Resolvers map[publicdns.ID]map[publicdns.Region]*dnsserver.RecursiveResolver

	// TrustAnchor is the signed root zone's DNSKEY — what a validating
	// stub configures, like the real root anchor in a trust-anchor file.
	TrustAnchor dnswire.DNSKEYRData
}

// ZoneData is the immutable DNS content of the backbone: the signed
// delegation chain and the operators' authoritative zones. Building it
// costs three key generations and three zone signings — by far the most
// expensive part of a backbone build — and the result is never mutated
// after construction (zones are read-only once signed; the dynamic echo
// names are stateless closures), so one ZoneData can safely back every
// shard world of a sharded run.
type ZoneData struct {
	Root, Com, Canary       *dnsserver.Zone
	Akamai, Google, OpenDNS *dnsserver.Zone
	TrustAnchor             dnswire.DNSKEYRData
}

// BuildZones constructs and signs the backbone's zone content.
func BuildZones() *ZoneData {
	rootKey := dnssec.GenerateKey("", "backbone-root")
	comKey := dnssec.GenerateKey("com", "backbone-com")
	canaryKey := dnssec.GenerateKey("dnsloc.com", "backbone-canary")

	rootZone := dnsserver.NewZone("")
	rootZone.Delegate("com", map[dnswire.Name][]netip.Addr{
		"a.gtld-servers.net": {ComTLDAddr},
	})
	rootZone.MustAdd(comKey.DSRecord(86400))

	comZone := dnsserver.NewZone("com")
	comZone.Delegate("akamai.com", map[dnswire.Name][]netip.Addr{
		"ns1.akamai.com": {akamaiAuthAddr},
	})
	comZone.Delegate("google.com", map[dnswire.Name][]netip.Addr{
		"ns1.google.com": {googleAuthAddr},
	})
	comZone.Delegate("opendns.com", map[dnswire.Name][]netip.Addr{
		"ns1.opendns.com": {opendnsAuthAddr},
	})
	comZone.Delegate("dnsloc.com", map[dnswire.Name][]netip.Addr{
		"ns1.dnsloc.com": {canaryAuthAddr},
	})
	comZone.MustAdd(canaryKey.DSRecord(86400))

	canaryZone := publicdns.CanaryZone()
	for _, sign := range []struct {
		zone *dnsserver.Zone
		key  *dnssec.Key
	}{{rootZone, rootKey}, {comZone, comKey}, {canaryZone, canaryKey}} {
		if err := sign.zone.Sign(sign.key); err != nil {
			panic(err)
		}
	}
	return &ZoneData{
		Root: rootZone, Com: comZone, Canary: canaryZone,
		Akamai: publicdns.AkamaiZone(), Google: publicdns.GoogleAuthZone(), OpenDNS: publicdns.OpenDNSAuthZone(),
		TrustAnchor: rootKey.Public,
	}
}

// Build constructs the backbone on the given network, generating fresh
// zone data.
func Build(net *netsim.Network) *Backbone {
	return BuildWith(net, BuildZones())
}

// BuildWith constructs the backbone around pre-built zone data. The
// zones are referenced, not copied: callers that share one ZoneData
// across concurrently running networks rely on zones being immutable
// after Sign.
func BuildWith(net *netsim.Network, zones *ZoneData) *Backbone {
	return BuildWithCores(net, zones, nil, netsim.CorePlain)
}

// BuildWithCores is BuildWith for worlds stamped out of a shared
// template: the core and regional transit routers — whose forwarding
// tables are identical in every shard and lane world — attach to the
// CoreSet so only the first build pays for the table maps (see
// netsim.RoutingCore). cores may be nil (no sharing).
func BuildWithCores(net *netsim.Network, zones *ZoneData, cores *netsim.CoreSet, role netsim.CoreRole) *Backbone {
	b := &Backbone{
		Net:       net,
		Core:      netsim.NewRouter("core"),
		Regional:  make(map[publicdns.Region]*netsim.Router),
		Sites:     make(map[publicdns.ID]map[publicdns.Region]publicdns.Site),
		Resolvers: make(map[publicdns.ID]map[publicdns.Region]*dnsserver.RecursiveResolver),
	}
	share := func(r *netsim.Router) {
		if cores != nil && role != netsim.CorePlain {
			r.ShareCore(cores.For(r.Name), role == netsim.CoreRecorder)
		}
	}
	// Link delays grade by tier so virtual round-trip times behave like
	// real ones: backbone links are slow, regional links faster.
	b.Core.Delay = 10 * time.Millisecond
	b.Core.RouterID = netip.MustParseAddr("100.65.255.1") // CGN-space router ID
	share(b.Core)
	for i, region := range publicdns.Regions {
		rt := netsim.NewRouter("transit-" + string(region))
		rt.Delay = 5 * time.Millisecond
		rt.RouterID = netip.AddrFrom4([4]byte{100, 65, byte(i + 1), 1})
		share(rt)
		rt.AddDefaultRoute(b.Core)
		b.Regional[region] = rt
	}
	b.buildDNSTree(zones)
	b.buildOperators()
	return b
}

// attachCoreServer wires an authoritative server box to the core.
func (b *Backbone) attachCoreServer(name string, addr netip.Addr, srv netsim.Service) *netsim.Router {
	r := netsim.NewRouter(name, addr)
	r.Delay = 2 * time.Millisecond
	r.Bind(53, srv)
	r.AddDefaultRoute(b.Core)
	b.Core.AddRoute(netip.PrefixFrom(addr, 24).Masked(), r)
	return r
}

// buildDNSTree attaches the authoritative servers for the pre-built zone
// content: root, TLD, and leaf servers. The echo zones (akamai, google)
// stay unsigned, as their dynamic real-world counterparts are. Each world
// gets its own AuthServer instances, but the zones behind them are shared
// read-only.
func (b *Backbone) buildDNSTree(zones *ZoneData) {
	b.TrustAnchor = zones.TrustAnchor
	b.attachCoreServer("root-a", RootAddr, dnsserver.NewAuthServer(zones.Root))
	b.attachCoreServer("gtld-com", ComTLDAddr, dnsserver.NewAuthServer(zones.Com))
	b.attachCoreServer("auth-akamai", akamaiAuthAddr, dnsserver.NewAuthServer(zones.Akamai))
	b.attachCoreServer("auth-google", googleAuthAddr, dnsserver.NewAuthServer(zones.Google))
	b.attachCoreServer("auth-opendns", opendnsAuthAddr, dnsserver.NewAuthServer(zones.OpenDNS))
	b.attachCoreServer("auth-canary", canaryAuthAddr, dnsserver.NewAuthServer(zones.Canary))
}

// buildOperators deploys every operator's anycast sites: each region's
// transit routes the operator's service prefixes to the local site, so
// "which site answers" is decided by where the client attaches — anycast.
func (b *Backbone) buildOperators() {
	for _, id := range publicdns.All {
		cfg := publicdns.Lookup(id)
		b.Sites[id] = make(map[publicdns.Region]publicdns.Site)
		b.Resolvers[id] = make(map[publicdns.Region]*dnsserver.RecursiveResolver)
		for _, site := range publicdns.Sites(id) {
			router, res := site.Build(RootAddr)
			res.DNSSECAware = true // the big public resolvers all validate
			router.Delay = 2 * time.Millisecond
			regional := b.Regional[site.Region]
			router.AddDefaultRoute(regional)
			for _, p := range cfg.ServicePrefixes {
				regional.AddRoute(p, router)
				if site.Region == publicdns.RegionNA {
					// The core also needs a route for the anycast space for
					// core-attached clients; NA is its "nearest" site.
					b.Core.AddRoute(p, regional)
				}
			}
			// Egress space routes back to the site from anywhere.
			regional.AddRoute(site.EgressPrefixV4(), router)
			regional.AddRoute(site.EgressPrefixV6(), router)
			b.Core.AddRoute(site.EgressPrefixV4(), regional)
			b.Core.AddRoute(site.EgressPrefixV6(), regional)

			b.Sites[id][site.Region] = site
			b.Resolvers[id][site.Region] = res
		}
	}
}

// AttachISP builds an ISP and wires it to its region's transit.
func (b *Backbone) AttachISP(cfg isp.Config) *isp.Network {
	regional, ok := b.Regional[cfg.Region]
	if !ok {
		panic(fmt.Sprintf("backbone: unknown region %q", cfg.Region))
	}
	if len(cfg.RootHints) == 0 {
		cfg.RootHints = []netip.Addr{RootAddr}
	}
	n := isp.Build(cfg, regional)
	regional.AddRoute(cfg.PrefixV4, n.Border)
	b.Core.AddRoute(cfg.PrefixV4, regional)
	if cfg.PrefixV6.IsValid() {
		regional.AddRoute(cfg.PrefixV6, n.Border)
		b.Core.AddRoute(cfg.PrefixV6, regional)
	}
	return n
}

// FlushResolverCaches clears every public-site resolver cache; the study
// uses it between phases so cached answers don't mask path changes.
func (b *Backbone) FlushResolverCaches() {
	for _, byRegion := range b.Resolvers {
		for _, res := range byRegion {
			res.FlushCache()
		}
	}
}
