package dnsloc_test

import (
	"encoding/binary"
	"errors"
	"net"
	"net/netip"
	"testing"
	"time"

	dnsloc "github.com/dnswatch/dnsloc"
	"github.com/dnswatch/dnsloc/internal/core"
	"github.com/dnswatch/dnsloc/internal/dnswire"
)

// closedLoopbackPort reserves a loopback TCP port and closes it, so a
// dial hits a port with no listener — a kernel-level RST, not a mock.
func closedLoopbackPort(t *testing.T) netip.AddrPort {
	t.Helper()
	l, err := net.ListenTCP("tcp", &net.TCPAddr{IP: net.IPv4(127, 0, 0, 1)})
	if err != nil {
		t.Fatal(err)
	}
	port := l.Addr().(*net.TCPAddr).Port
	l.Close()
	return netip.AddrPortFrom(netip.MustParseAddr("127.0.0.1"), uint16(port))
}

// misbehavingTCP accepts one connection at a time and hands it to serve.
func misbehavingTCP(t *testing.T, serve func(net.Conn)) netip.AddrPort {
	t.Helper()
	l, err := net.ListenTCP("tcp", &net.TCPAddr{IP: net.IPv4(127, 0, 0, 1)})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { l.Close() })
	go func() {
		for {
			conn, err := l.Accept()
			if err != nil {
				return
			}
			go serve(conn)
		}
	}()
	return netip.AddrPortFrom(netip.MustParseAddr("127.0.0.1"), uint16(l.Addr().(*net.TCPAddr).Port))
}

// TestTCPClientDialRefusedIsRefused: a dial to a closed port must
// classify as ErrRefused, not timeout.
func TestTCPClientDialRefusedIsRefused(t *testing.T) {
	c := &dnsloc.TCPClient{Timeout: 2 * time.Second}
	_, _, err := c.ExchangeRTT(closedLoopbackPort(t), dnsloc.NewAQuery(31, "x.example.com"))
	if !errors.Is(err, core.ErrRefused) {
		t.Errorf("dial to closed port = %v, want core.ErrRefused", err)
	}
}

// TestTCPClientShortFrameIsGarbage: a server that reads the query and
// closes without answering leaves the client an EOF before any frame —
// garbage, not a timeout. This was the regression: every read failure
// used to collapse into ErrTimeout.
func TestTCPClientShortFrameIsGarbage(t *testing.T) {
	addr := misbehavingTCP(t, func(conn net.Conn) {
		defer conn.Close()
		buf := make([]byte, 512)
		conn.Read(buf) //nolint:errcheck
	})
	c := &dnsloc.TCPClient{Timeout: 2 * time.Second}
	_, _, err := c.ExchangeRTT(addr, dnsloc.NewAQuery(32, "x.example.com"))
	if !errors.Is(err, core.ErrGarbage) {
		t.Errorf("close-without-answer = %v, want core.ErrGarbage", err)
	}
}

// TestTCPClientTruncatedFrameIsGarbage: a length prefix promising more
// octets than the server sends (connection closed mid-frame) is
// garbage.
func TestTCPClientTruncatedFrameIsGarbage(t *testing.T) {
	addr := misbehavingTCP(t, func(conn net.Conn) {
		defer conn.Close()
		buf := make([]byte, 512)
		conn.Read(buf) //nolint:errcheck
		frame := make([]byte, 2+10)
		binary.BigEndian.PutUint16(frame[:2], 100) // promise 100, deliver 10
		conn.Write(frame)                          //nolint:errcheck
	})
	c := &dnsloc.TCPClient{Timeout: 2 * time.Second}
	_, _, err := c.ExchangeRTT(addr, dnsloc.NewAQuery(33, "x.example.com"))
	if !errors.Is(err, core.ErrGarbage) {
		t.Errorf("mid-frame close = %v, want core.ErrGarbage", err)
	}
}

// TestTCPClientUnparseableFrameIsGarbage: a well-framed body that fails
// DNS parsing is garbage.
func TestTCPClientUnparseableFrameIsGarbage(t *testing.T) {
	addr := misbehavingTCP(t, func(conn net.Conn) {
		defer conn.Close()
		buf := make([]byte, 512)
		conn.Read(buf) //nolint:errcheck
		body := []byte{0xde, 0xad, 0xbe, 0xef}
		frame := make([]byte, 2, 2+len(body))
		binary.BigEndian.PutUint16(frame[:2], uint16(len(body)))
		conn.Write(append(frame, body...)) //nolint:errcheck
	})
	c := &dnsloc.TCPClient{Timeout: 2 * time.Second}
	_, _, err := c.ExchangeRTT(addr, dnsloc.NewAQuery(34, "x.example.com"))
	if !errors.Is(err, core.ErrGarbage) {
		t.Errorf("unparseable frame = %v, want core.ErrGarbage", err)
	}
}

// TestTCPClientSilentServerIsTimeout: an accepted connection that never
// answers is the one case that still classifies as a timeout.
func TestTCPClientSilentServerIsTimeout(t *testing.T) {
	block := make(chan struct{})
	t.Cleanup(func() { close(block) })
	addr := misbehavingTCP(t, func(conn net.Conn) {
		defer conn.Close()
		<-block
	})
	c := &dnsloc.TCPClient{Timeout: 300 * time.Millisecond}
	_, _, err := c.ExchangeRTT(addr, dnsloc.NewAQuery(35, "x.example.com"))
	if !errors.Is(err, core.ErrTimeout) {
		t.Errorf("silent server = %v, want core.ErrTimeout", err)
	}
}

// twoResponseDNS answers each UDP query twice — first a complete small
// answer, then a truncated one — the shape an intercepted path produces
// when the CPE's answer fits a datagram but the real resolver's does
// not. Its TCP sibling serves the full answer.
type twoResponseDNS struct {
	udp      *net.UDPConn
	tcp      *net.TCPListener
	addrPort netip.AddrPort
}

func startTwoResponseDNS(t *testing.T) *twoResponseDNS {
	t.Helper()
	udp, err := net.ListenUDP("udp", &net.UDPAddr{IP: net.IPv4(127, 0, 0, 1)})
	if err != nil {
		t.Fatal(err)
	}
	port := udp.LocalAddr().(*net.UDPAddr).Port
	tcp, err := net.ListenTCP("tcp", &net.TCPAddr{IP: net.IPv4(127, 0, 0, 1), Port: port})
	if err != nil {
		udp.Close()
		t.Skipf("tcp listen on same port: %v", err)
	}
	s := &twoResponseDNS{udp: udp, tcp: tcp,
		addrPort: netip.AddrPortFrom(netip.MustParseAddr("127.0.0.1"), uint16(port))}
	t.Cleanup(func() { udp.Close(); tcp.Close() })
	go s.serveUDP()
	go s.serveTCP()
	return s
}

func (s *twoResponseDNS) serveUDP() {
	buf := make([]byte, 4096)
	for {
		n, from, err := s.udp.ReadFromUDP(buf)
		if err != nil {
			return
		}
		query, err := dnswire.Unpack(buf[:n])
		if err != nil {
			continue
		}
		// First response: small, complete, TC clear.
		small := dnswire.NewResponse(query, dnswire.RCodeSuccess)
		small.Answers = append(small.Answers, dnswire.Record{
			Name: query.Question().Name, Class: dnswire.ClassINET, TTL: 0,
			Data: dnswire.TXTRData{Strings: []string{"short"}},
		})
		if wire, err := small.Pack(); err == nil {
			s.udp.WriteToUDP(wire, from) //nolint:errcheck
		}
		// Second response: the big answer, truncated to fit a datagram.
		if wire, err := dnswire.PackWithTruncation(bigTXT(query), 512); err == nil {
			s.udp.WriteToUDP(wire, from) //nolint:errcheck
		}
	}
}

func (s *twoResponseDNS) serveTCP() {
	for {
		conn, err := s.tcp.Accept()
		if err != nil {
			return
		}
		go func() {
			defer conn.Close()
			conn.SetDeadline(time.Now().Add(2 * time.Second)) //nolint:errcheck
			query, err := dnswire.ReadTCP(conn)
			if err != nil {
				return
			}
			dnswire.WriteTCP(conn, bigTXT(query)) //nolint:errcheck
		}()
	}
}

// TestFallbackFiresWhenAnyResponseTruncated is the regression for the
// first-response-only truncation check: the replication window collects
// a complete answer first and a truncated one second, and the fallback
// must still retry over TCP.
func TestFallbackFiresWhenAnyResponseTruncated(t *testing.T) {
	srv := startTwoResponseDNS(t)

	c := dnsloc.NewFallbackClient(2 * time.Second)
	// Keep the default replication window so both responses are collected.
	q := dnsloc.NewAQuery(36, "big.example.com")
	resps, _, err := c.ExchangeRTT(srv.addrPort, q)
	if err != nil {
		t.Fatal(err)
	}
	if len(resps) != 1 {
		t.Fatalf("resps = %d, want the single TCP answer", len(resps))
	}
	if resps[0].Header.Truncated {
		t.Error("fallback returned a truncated answer")
	}
	if len(resps[0].Answers) != 5 {
		t.Errorf("answers = %d, want 5 (full TCP response)", len(resps[0].Answers))
	}
}
