package dnsloc

import (
	"time"

	"github.com/dnswatch/dnsloc/internal/core"
	"github.com/dnswatch/dnsloc/internal/metrics"
)

// ClientMetrics instruments the real-network transports. Unlike the
// simulator's Stable counters these measure wall clock on a live
// network, so everything here is Diagnostic: useful to a human reading
// a run, never part of a deterministic snapshot.
type ClientMetrics struct {
	// Exchanges counts logical queries (one ExchangeRTT call each).
	Exchanges *metrics.Counter
	// Attempts counts transport sends — the original datagram and every
	// retransmission.
	Attempts *metrics.Counter
	// AttemptRTT is the per-attempt duration histogram. Every attempt
	// contributes a sample: an answered attempt records its response
	// RTT, a timed-out attempt records the time it spent waiting. A
	// retransmitted-then-answered exchange therefore shows two samples,
	// not one — the instrument records what the wire did, not just the
	// happy ending.
	AttemptRTT *metrics.Histogram
}

// NewClientMetrics registers the transport metrics on reg. Returns nil
// on a nil registry (disabled plane).
func NewClientMetrics(reg *metrics.Registry) *ClientMetrics {
	if reg == nil {
		return nil
	}
	return &ClientMetrics{
		Exchanges:  reg.Counter("udpclient.exchanges", metrics.Diagnostic),
		Attempts:   reg.Counter("udpclient.attempts", metrics.Diagnostic),
		AttemptRTT: reg.Histogram("udpclient.attempt_ms", metrics.Diagnostic, core.RTTEdgesMs),
	}
}

// noteExchange records one logical query. Nil-safe.
func (m *ClientMetrics) noteExchange() {
	if m != nil {
		m.Exchanges.Inc()
	}
}

// noteAttempt records one completed attempt and its duration. Nil-safe.
func (m *ClientMetrics) noteAttempt(d time.Duration) {
	if m != nil {
		m.Attempts.Inc()
		m.AttemptRTT.Observe(d.Milliseconds())
	}
}
