package dnsloc_test

import (
	"net"
	"net/netip"
	"testing"
	"time"

	dnsloc "github.com/dnswatch/dnsloc"
	"github.com/dnswatch/dnsloc/internal/dnswire"
)

// replicatingDNS answers every query twice with different TXT bodies —
// the query-replication behaviour prior work observed on real paths.
type replicatingDNS struct {
	conn     *net.UDPConn
	addrPort netip.AddrPort
	done     chan struct{}
}

func startReplicatingDNS(t *testing.T) *replicatingDNS {
	t.Helper()
	conn, err := net.ListenUDP("udp", &net.UDPAddr{IP: net.IPv4(127, 0, 0, 1)})
	if err != nil {
		t.Fatal(err)
	}
	s := &replicatingDNS{
		conn:     conn,
		addrPort: conn.LocalAddr().(*net.UDPAddr).AddrPort(),
		done:     make(chan struct{}),
	}
	go s.serve()
	return s
}

func (s *replicatingDNS) serve() {
	defer close(s.done)
	buf := make([]byte, 4096)
	for {
		n, from, err := s.conn.ReadFromUDP(buf)
		if err != nil {
			return
		}
		query, err := dnswire.Unpack(buf[:n])
		if err != nil {
			continue
		}
		first := dnswire.MustPack(dnswire.NewTXTResponse(query, "interceptor"))
		second := dnswire.MustPack(dnswire.NewTXTResponse(query, "genuine"))
		s.conn.WriteToUDP(first, from)  //nolint:errcheck
		s.conn.WriteToUDP(second, from) //nolint:errcheck
	}
}

func (s *replicatingDNS) close() {
	s.conn.Close()
	<-s.done
}

func TestUDPClientObservesReplication(t *testing.T) {
	srv := startReplicatingDNS(t)
	defer srv.close()

	c := dnsloc.NewUDPClient(2 * time.Second)
	c.Window = 200 * time.Millisecond
	q := dnsloc.NewVersionBindQuery(61)
	resps, err := c.Exchange(srv.addrPort, q)
	if err != nil {
		t.Fatal(err)
	}
	if len(resps) != 2 {
		t.Fatalf("responses = %d, want 2 (replication window)", len(resps))
	}
	a, _ := resps[0].FirstTXT()
	b, _ := resps[1].FirstTXT()
	if a != "interceptor" || b != "genuine" {
		t.Errorf("answers = %q, %q — first response must win", a, b)
	}
}

func TestUDPClientWithoutWindowTakesFirstOnly(t *testing.T) {
	srv := startReplicatingDNS(t)
	defer srv.close()

	c := dnsloc.NewUDPClient(2 * time.Second)
	c.Window = 0
	resps, err := c.Exchange(srv.addrPort, dnsloc.NewVersionBindQuery(62))
	if err != nil {
		t.Fatal(err)
	}
	if len(resps) != 1 {
		t.Fatalf("responses = %d, want 1", len(resps))
	}
}
