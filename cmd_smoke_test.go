package dnsloc_test

import (
	"os/exec"
	"strings"
	"testing"
)

// runCmd executes one of the repository's commands via `go run` and
// returns combined output. These are end-to-end CLI smoke tests: flags
// parse, worlds build, output renders.
func runCmd(t *testing.T, args ...string) (string, error) {
	t.Helper()
	cmd := exec.Command("go", append([]string{"run"}, args...)...)
	out, err := cmd.CombinedOutput()
	return string(out), err
}

func TestCLIDnslocSimXB6(t *testing.T) {
	if testing.Short() {
		t.Skip("CLI smoke tests compile binaries; skipped in -short mode")
	}
	out, err := runCmd(t, "./cmd/dnsloc", "-sim", "xb6")
	// Interception detected -> exit code 1, which `go run` surfaces.
	if err == nil {
		t.Errorf("expected nonzero exit for an intercepted home")
	}
	for _, want := range []string{"intercepted by CPE", "dnsmasq-2.78", "NON-STANDARD"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}

func TestCLIDnslocList(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	out, err := runCmd(t, "./cmd/dnsloc", "-list")
	if err != nil {
		t.Fatalf("%v\n%s", err, out)
	}
	for _, want := range []string{"xb6", "isp-middlebox", "cpe-chaos-relay"} {
		if !strings.Contains(out, want) {
			t.Errorf("scenario list missing %q", want)
		}
	}
}

func TestCLIPilotstudySmallScale(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	out, err := runCmd(t, "./cmd/pilotstudy", "-scale", "0.02", "-table", "4")
	if err != nil {
		t.Fatalf("%v\n%s", err, out)
	}
	for _, want := range []string{"Table 4", "Cloudflare DNS", "All Intercepted"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}

func TestCLIDnsmonSimRounds(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	out, err := runCmd(t, "./cmd/dnsmon", "-sim", "pihole", "-count", "2", "-interval", "0")
	if err == nil {
		t.Error("expected exit 1 after observing interception")
	}
	if strings.Count(out, "round=") != 2 {
		t.Errorf("rounds:\n%s", out)
	}
	if !strings.Contains(out, "dnsmasq-pi-hole") {
		t.Errorf("fingerprint missing:\n%s", out)
	}
}

func TestCLIXB6Lab(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	out, err := runCmd(t, "./cmd/xb6lab")
	if err != nil {
		t.Fatalf("%v\n%s", err, out)
	}
	for _, want := range []string{"dnat", "spoofing source", "intercepted by CPE", "well-behaved router"} {
		if !strings.Contains(out, want) {
			t.Errorf("case study missing %q", want)
		}
	}
}
