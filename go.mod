module github.com/dnswatch/dnsloc

go 1.22
