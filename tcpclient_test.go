package dnsloc_test

import (
	"net"
	"net/netip"
	"strings"
	"testing"
	"time"

	dnsloc "github.com/dnswatch/dnsloc"
	"github.com/dnswatch/dnsloc/internal/dnswire"
)

// loopbackTCPDNS answers over TCP; its UDP sibling truncates.
type loopbackTCPDNS struct {
	udp      *net.UDPConn
	tcp      *net.TCPListener
	addrPort netip.AddrPort
	done     chan struct{}
	tcpDone  chan struct{}
}

// bigTXT is deliberately larger than one UDP payload.
func bigTXT(query *dnswire.Message) *dnswire.Message {
	resp := dnswire.NewResponse(query, dnswire.RCodeSuccess)
	for i := 0; i < 5; i++ {
		resp.Answers = append(resp.Answers, dnswire.Record{
			Name: query.Question().Name, Class: dnswire.ClassINET, TTL: 0,
			Data: dnswire.TXTRData{Strings: []string{strings.Repeat("y", 200)}},
		})
	}
	return resp
}

func startTruncatingDNS(t *testing.T) *loopbackTCPDNS {
	t.Helper()
	udp, err := net.ListenUDP("udp", &net.UDPAddr{IP: net.IPv4(127, 0, 0, 1)})
	if err != nil {
		t.Fatal(err)
	}
	port := udp.LocalAddr().(*net.UDPAddr).Port
	tcp, err := net.ListenTCP("tcp", &net.TCPAddr{IP: net.IPv4(127, 0, 0, 1), Port: port})
	if err != nil {
		udp.Close()
		t.Skipf("tcp listen on same port: %v", err)
	}
	s := &loopbackTCPDNS{
		udp: udp, tcp: tcp,
		addrPort: netip.AddrPortFrom(netip.MustParseAddr("127.0.0.1"), uint16(port)),
		done:     make(chan struct{}), tcpDone: make(chan struct{}),
	}
	go s.serveUDP()
	go s.serveTCP()
	return s
}

func (s *loopbackTCPDNS) serveUDP() {
	defer close(s.done)
	buf := make([]byte, 4096)
	for {
		n, from, err := s.udp.ReadFromUDP(buf)
		if err != nil {
			return
		}
		query, err := dnswire.Unpack(buf[:n])
		if err != nil {
			continue
		}
		wire, err := dnswire.PackWithTruncation(bigTXT(query), 512)
		if err != nil {
			continue
		}
		s.udp.WriteToUDP(wire, from) //nolint:errcheck
	}
}

func (s *loopbackTCPDNS) serveTCP() {
	defer close(s.tcpDone)
	for {
		conn, err := s.tcp.Accept()
		if err != nil {
			return
		}
		go func() {
			defer conn.Close()
			conn.SetDeadline(time.Now().Add(2 * time.Second)) //nolint:errcheck
			query, err := dnswire.ReadTCP(conn)
			if err != nil {
				return
			}
			dnswire.WriteTCP(conn, bigTXT(query)) //nolint:errcheck
		}()
	}
}

func (s *loopbackTCPDNS) close() {
	s.udp.Close()
	s.tcp.Close()
	<-s.done
	<-s.tcpDone
}

func TestFallbackClientRetriesTruncationOverTCP(t *testing.T) {
	srv := startTruncatingDNS(t)
	defer srv.close()

	c := dnsloc.NewFallbackClient(2 * time.Second)
	c.UDP.Window = 0
	q := dnsloc.NewAQuery(21, "big.example.com")
	resps, err := c.Exchange(srv.addrPort, q)
	if err != nil {
		t.Fatal(err)
	}
	m := resps[0]
	if m.Header.Truncated {
		t.Error("fallback returned the truncated UDP answer")
	}
	if len(m.Answers) != 5 {
		t.Errorf("answers = %d, want 5 (full TCP response)", len(m.Answers))
	}
}

func TestTCPClientExchangeRTT(t *testing.T) {
	srv := startTruncatingDNS(t)
	defer srv.close()

	c := &dnsloc.TCPClient{Timeout: 2 * time.Second}
	q := dnsloc.NewAQuery(23, "big.example.com")
	resps, rtt, err := c.ExchangeRTT(srv.addrPort, q)
	if err != nil {
		t.Fatal(err)
	}
	if len(resps) != 1 || len(resps[0].Answers) != 5 {
		t.Fatalf("resps = %d, want one full answer", len(resps))
	}
	if rtt <= 0 {
		t.Errorf("rtt = %v, want > 0", rtt)
	}
}

func TestFallbackClientExchangeRTT(t *testing.T) {
	srv := startTruncatingDNS(t)
	defer srv.close()

	c := dnsloc.NewFallbackClient(2 * time.Second)
	c.UDP.Window = 0
	q := dnsloc.NewAQuery(24, "big.example.com")
	resps, rtt, err := c.ExchangeRTT(srv.addrPort, q)
	if err != nil {
		t.Fatal(err)
	}
	if resps[0].Header.Truncated {
		t.Error("fallback RTT path returned the truncated UDP answer")
	}
	if rtt <= 0 {
		t.Errorf("rtt = %v, want the TCP exchange's timing", rtt)
	}
}

func TestUDPAloneSeesTruncation(t *testing.T) {
	srv := startTruncatingDNS(t)
	defer srv.close()

	c := dnsloc.NewUDPClient(2 * time.Second)
	c.Window = 0
	q := dnsloc.NewAQuery(22, "big.example.com")
	resps, err := c.Exchange(srv.addrPort, q)
	if err != nil {
		t.Fatal(err)
	}
	if !resps[0].Header.Truncated {
		t.Error("expected a truncated UDP answer")
	}
}
