package dnsloc

import (
	"net"
	"net/netip"
	"time"

	"github.com/dnswatch/dnsloc/internal/core"
	"github.com/dnswatch/dnsloc/internal/dnswire"
)

// TCPClient exchanges DNS messages over TCP with RFC 1035 framing.
// It exists for completeness (identity answers are tiny and never need
// it) and as the fallback FallbackClient switches to on truncation.
type TCPClient struct {
	Timeout time.Duration
}

// Exchange implements Client over one TCP connection per query.
func (c *TCPClient) Exchange(server netip.AddrPort, query *dnswire.Message) ([]*dnswire.Message, error) {
	timeout := c.Timeout
	if timeout == 0 {
		timeout = 5 * time.Second
	}
	conn, err := net.DialTimeout("tcp", server.String(), timeout)
	if err != nil {
		return nil, core.ErrTimeout
	}
	defer conn.Close()
	if err := conn.SetDeadline(time.Now().Add(timeout)); err != nil {
		return nil, err
	}
	if err := dnswire.WriteTCP(conn, query); err != nil {
		return nil, err
	}
	m, err := dnswire.ReadTCP(conn)
	if err != nil {
		return nil, core.ErrTimeout
	}
	if m.Header.ID != query.Header.ID {
		return nil, core.ErrTimeout
	}
	return []*dnswire.Message{m}, nil
}

// FallbackClient queries over UDP and retries over TCP when the answer
// arrives truncated (TC bit set) — standard stub-resolver behaviour.
type FallbackClient struct {
	UDP *UDPClient
	TCP *TCPClient
}

// NewFallbackClient builds the standard UDP-with-TCP-fallback transport.
func NewFallbackClient(timeout time.Duration) *FallbackClient {
	return &FallbackClient{
		UDP: NewUDPClient(timeout),
		TCP: &TCPClient{Timeout: timeout},
	}
}

// Exchange implements Client.
func (c *FallbackClient) Exchange(server netip.AddrPort, query *dnswire.Message) ([]*dnswire.Message, error) {
	resps, err := c.UDP.Exchange(server, query)
	if err != nil {
		return nil, err
	}
	if len(resps) > 0 && resps[0].Header.Truncated {
		if tcp, err := c.TCP.Exchange(server, query); err == nil {
			return tcp, nil
		}
		// TCP failed: return the truncated UDP answer, as stubs do.
	}
	return resps, nil
}
