package dnsloc

import (
	"errors"
	"io"
	"net"
	"net/netip"
	"syscall"
	"time"

	"github.com/dnswatch/dnsloc/internal/core"
	"github.com/dnswatch/dnsloc/internal/dnswire"
)

// TCPClient exchanges DNS messages over TCP with RFC 1035 framing.
// It exists for completeness (identity answers are tiny and never need
// it) and as the fallback FallbackClient switches to on truncation.
type TCPClient struct {
	Timeout time.Duration
}

// Exchange implements Client over one TCP connection per query.
func (c *TCPClient) Exchange(server netip.AddrPort, query *dnswire.Message) ([]*dnswire.Message, error) {
	resps, _, err := c.ExchangeRTT(server, query)
	return resps, err
}

// ExchangeRTT implements core.RTTExchanger: the RTT is the wall-clock
// span from writing the framed query to reading its response (dial and
// handshake time excluded, so UDP and TCP RTTs are comparable).
func (c *TCPClient) ExchangeRTT(server netip.AddrPort, query *dnswire.Message) ([]*dnswire.Message, time.Duration, error) {
	timeout := c.Timeout
	if timeout == 0 {
		timeout = 5 * time.Second
	}
	conn, err := net.DialTimeout("tcp", server.String(), timeout)
	if err != nil {
		return nil, 0, classifyTCPDialError(err)
	}
	defer conn.Close()
	if err := conn.SetDeadline(time.Now().Add(timeout)); err != nil {
		return nil, 0, err
	}
	start := time.Now()
	if err := dnswire.WriteTCP(conn, query); err != nil {
		return nil, 0, err
	}
	m, err := dnswire.ReadTCP(conn)
	if err != nil {
		return nil, 0, classifyTCPReadError(err)
	}
	if m.Header.ID != query.Header.ID {
		return nil, 0, core.ErrGarbage
	}
	return []*dnswire.Message{m}, time.Since(start), nil
}

// classifyTCPDialError maps a dial failure onto the detector's error
// vocabulary. The distinction matters for retry semantics: a refused or
// timed-out dial is transient and worth another attempt, while an
// unreachable network is permanent for this measurement —
// core.RetryPolicy.Classify stops retrying on ErrNoRoute, exactly the
// case of probing a v6 resolver from a v4-only vantage point.
func classifyTCPDialError(err error) error {
	switch {
	case errors.Is(err, syscall.ECONNREFUSED):
		return core.ErrRefused
	case errors.Is(err, syscall.ENETUNREACH),
		errors.Is(err, syscall.EHOSTUNREACH),
		errors.Is(err, syscall.EADDRNOTAVAIL):
		return core.ErrNoRoute
	}
	var nerr net.Error
	if errors.As(err, &nerr) && nerr.Timeout() {
		return core.ErrTimeout
	}
	// The connection never established and it was not a timeout: there
	// is no path to this server.
	return core.ErrNoRoute
}

// classifyTCPReadError maps a framed-read failure. Only a genuine
// deadline expiry is a timeout; a connection the server closed
// mid-frame (EOF before the length prefix's worth of octets arrived) or
// a frame that fails to parse is garbage — evidence of a broken or
// interfering middlebox, which the detector treats very differently
// from silence.
func classifyTCPReadError(err error) error {
	var nerr net.Error
	if errors.As(err, &nerr) && nerr.Timeout() {
		return core.ErrTimeout
	}
	if errors.Is(err, io.EOF) || errors.Is(err, io.ErrUnexpectedEOF) ||
		errors.Is(err, syscall.ECONNRESET) {
		return core.ErrGarbage
	}
	if errors.Is(err, syscall.ECONNREFUSED) {
		return core.ErrRefused
	}
	// Parse failures from dnswire.Unpack land here: a well-framed but
	// unparseable message is garbage, not a timeout.
	return core.ErrGarbage
}

// FallbackClient queries over UDP and retries over TCP when the answer
// arrives truncated (TC bit set) — standard stub-resolver behaviour.
type FallbackClient struct {
	UDP *UDPClient
	TCP *TCPClient
}

// NewFallbackClient builds the standard UDP-with-TCP-fallback transport.
func NewFallbackClient(timeout time.Duration) *FallbackClient {
	return &FallbackClient{
		UDP: NewUDPClient(timeout),
		TCP: &TCPClient{Timeout: timeout},
	}
}

// Exchange implements Client.
func (c *FallbackClient) Exchange(server netip.AddrPort, query *dnswire.Message) ([]*dnswire.Message, error) {
	resps, _, err := c.ExchangeRTT(server, query)
	return resps, err
}

// ExchangeRTT implements core.RTTExchanger. When the fallback fires,
// the reported RTT is the TCP exchange's — the answer the stub actually
// consumed.
func (c *FallbackClient) ExchangeRTT(server netip.AddrPort, query *dnswire.Message) ([]*dnswire.Message, time.Duration, error) {
	resps, rtt, err := c.UDP.ExchangeRTT(server, query)
	if err != nil {
		return nil, 0, err
	}
	if anyTruncated(resps) {
		if tcp, trtt, err := c.TCP.ExchangeRTT(server, query); err == nil {
			return tcp, trtt, nil
		}
		// TCP failed: return the truncated UDP answer, as stubs do.
	}
	return resps, rtt, nil
}

// anyTruncated reports whether any collected response carries the TC
// bit. The UDP client's replication window can return several answers —
// on an intercepted path, the interceptor's and the real resolver's —
// and truncation on any of them means some responder had more to say
// than a datagram holds, so the TCP retry must fire even when the
// first-arriving answer was complete.
func anyTruncated(resps []*dnswire.Message) bool {
	for _, m := range resps {
		if m.Header.Truncated {
			return true
		}
	}
	return false
}
