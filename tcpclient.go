package dnsloc

import (
	"errors"
	"net"
	"net/netip"
	"syscall"
	"time"

	"github.com/dnswatch/dnsloc/internal/core"
	"github.com/dnswatch/dnsloc/internal/dnswire"
)

// TCPClient exchanges DNS messages over TCP with RFC 1035 framing.
// It exists for completeness (identity answers are tiny and never need
// it) and as the fallback FallbackClient switches to on truncation.
type TCPClient struct {
	Timeout time.Duration
}

// Exchange implements Client over one TCP connection per query.
func (c *TCPClient) Exchange(server netip.AddrPort, query *dnswire.Message) ([]*dnswire.Message, error) {
	resps, _, err := c.ExchangeRTT(server, query)
	return resps, err
}

// ExchangeRTT implements core.RTTExchanger: the RTT is the wall-clock
// span from writing the framed query to reading its response (dial and
// handshake time excluded, so UDP and TCP RTTs are comparable).
func (c *TCPClient) ExchangeRTT(server netip.AddrPort, query *dnswire.Message) ([]*dnswire.Message, time.Duration, error) {
	timeout := c.Timeout
	if timeout == 0 {
		timeout = 5 * time.Second
	}
	conn, err := net.DialTimeout("tcp", server.String(), timeout)
	if err != nil {
		if errors.Is(err, syscall.ECONNREFUSED) {
			return nil, 0, core.ErrRefused
		}
		return nil, 0, core.ErrTimeout
	}
	defer conn.Close()
	if err := conn.SetDeadline(time.Now().Add(timeout)); err != nil {
		return nil, 0, err
	}
	start := time.Now()
	if err := dnswire.WriteTCP(conn, query); err != nil {
		return nil, 0, err
	}
	m, err := dnswire.ReadTCP(conn)
	if err != nil {
		return nil, 0, core.ErrTimeout
	}
	if m.Header.ID != query.Header.ID {
		return nil, 0, core.ErrGarbage
	}
	return []*dnswire.Message{m}, time.Since(start), nil
}

// FallbackClient queries over UDP and retries over TCP when the answer
// arrives truncated (TC bit set) — standard stub-resolver behaviour.
type FallbackClient struct {
	UDP *UDPClient
	TCP *TCPClient
}

// NewFallbackClient builds the standard UDP-with-TCP-fallback transport.
func NewFallbackClient(timeout time.Duration) *FallbackClient {
	return &FallbackClient{
		UDP: NewUDPClient(timeout),
		TCP: &TCPClient{Timeout: timeout},
	}
}

// Exchange implements Client.
func (c *FallbackClient) Exchange(server netip.AddrPort, query *dnswire.Message) ([]*dnswire.Message, error) {
	resps, _, err := c.ExchangeRTT(server, query)
	return resps, err
}

// ExchangeRTT implements core.RTTExchanger. When the fallback fires,
// the reported RTT is the TCP exchange's — the answer the stub actually
// consumed.
func (c *FallbackClient) ExchangeRTT(server netip.AddrPort, query *dnswire.Message) ([]*dnswire.Message, time.Duration, error) {
	resps, rtt, err := c.UDP.ExchangeRTT(server, query)
	if err != nil {
		return nil, 0, err
	}
	if len(resps) > 0 && resps[0].Header.Truncated {
		if tcp, trtt, err := c.TCP.ExchangeRTT(server, query); err == nil {
			return tcp, trtt, nil
		}
		// TCP failed: return the truncated UDP answer, as stubs do.
	}
	return resps, rtt, nil
}
