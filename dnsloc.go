// Package dnsloc detects transparent DNS interception and localizes the
// interceptor: the home router (CPE), the ISP, or beyond. It implements
// the three-step, client-side technique of "Home is Where the Hijacking
// is: Understanding DNS Interception by Residential Routers"
// (Randall et al., IMC 2021):
//
//  1. Location queries — CHAOS/TXT debugging queries (id.server,
//     o-o.myaddr.l.google.com, debug.opendns.com) whose answers have a
//     distinctive per-operator format that an alternate resolver cannot
//     reproduce. A non-standard answer means the query was intercepted.
//  2. CPE test — version.bind sent to the CPE's own public address and
//     to the intercepted resolvers; identical strings implicate the CPE,
//     because DNAT-based interceptors answer both with the same
//     forwarder.
//  3. ISP test — queries to unroutable (bogon) destinations; an answer
//     proves an interceptor inside the client's AS.
//
// The technique needs nothing but the ability to send DNS queries. The
// same Detector runs over a real network (NewUDPClient) or inside the
// packet-level simulator that ships with this module (NewSimHome and
// the cmd/pilotstudy study harness), which models homes, CPE NAT/DNAT,
// ISPs, middleboxes, and the four public resolver operators.
//
// Quick start:
//
//	lab := dnsloc.NewSimHome(dnsloc.ScenarioXB6)
//	report := lab.Detector().Run()
//	fmt.Println(report)   // "verdict: intercepted by CPE", fingerprint, ...
//
// On a live network:
//
//	det := &dnsloc.Detector{
//		Client:      dnsloc.NewUDPClient(2 * time.Second),
//		CPEPublicV4: myPublicAddr, // e.g. from the operator or router UI
//		QueryV6:     true,
//	}
//	report := det.Run()
package dnsloc

import (
	"github.com/dnswatch/dnsloc/internal/core"
	"github.com/dnswatch/dnsloc/internal/homelab"
	"github.com/dnswatch/dnsloc/internal/publicdns"
)

// Detector runs the three-step localization technique. See the package
// documentation for the protocol.
type Detector = core.Detector

// Report is a detector run's full output.
type Report = core.Report

// ProbeResult is one raw query observation inside a Report.
type ProbeResult = core.ProbeResult

// Client is the detector's transport abstraction.
type Client = core.Client

// Verdict is the localization conclusion.
type Verdict = core.Verdict

// Verdicts.
const (
	VerdictNotIntercepted = core.VerdictNotIntercepted
	VerdictCPE            = core.VerdictCPE
	VerdictISP            = core.VerdictISP
	VerdictUnknown        = core.VerdictUnknown
)

// Transparency classifies interceptor behaviour toward ordinary queries.
type Transparency = core.Transparency

// Transparency classes.
const (
	Transparent      = core.Transparent
	StatusModified   = core.StatusModified
	TransparencyBoth = core.TransparencyBoth
	TransparencyNA   = core.TransparencyNA
)

// ErrTimeout reports that a query received no response.
var ErrTimeout = core.ErrTimeout

// Family is an IP address family in probe results.
type Family = core.Family

// Families.
const (
	FamilyV4 = core.V4
	FamilyV6 = core.V6
)

// ResolverID identifies a public resolver operator.
type ResolverID = publicdns.ID

// The four operators the technique probes.
const (
	Cloudflare = publicdns.Cloudflare
	Google     = publicdns.Google
	Quad9      = publicdns.Quad9
	OpenDNS    = publicdns.OpenDNS
)

// AllResolvers lists the four operators in the paper's order.
var AllResolvers = publicdns.All

// SimHome is a self-contained simulated home network: one probe host
// behind a configurable CPE, an ISP, and the simulated public Internet
// (all four resolver operators, the DNS root, and supporting zones).
type SimHome = homelab.Lab

// Scenario selects a SimHome configuration.
type Scenario = homelab.Scenario

// Built-in scenarios.
const (
	// ScenarioClean is a well-behaved home: no interception.
	ScenarioClean = homelab.Clean
	// ScenarioXB6 reproduces the paper's §5 case study: an XB6 router
	// whose XDNS firewall DNATs all LAN port-53 traffic to the ISP
	// resolver.
	ScenarioXB6 = homelab.XB6
	// ScenarioPiHole is owner-intended interception via a Pi-hole.
	ScenarioPiHole = homelab.PiHole
	// ScenarioOpenForwarder answers DNS on its WAN port without
	// intercepting (Appendix A's confounder).
	ScenarioOpenForwarder = homelab.OpenForwarder
	// ScenarioISPMiddlebox intercepts in the ISP, bogons included.
	ScenarioISPMiddlebox = homelab.ISPMiddlebox
	// ScenarioISPMiddleboxNoBogon intercepts in the ISP but ignores
	// bogon destinations, defeating localization.
	ScenarioISPMiddleboxNoBogon = homelab.ISPMiddleboxNoBogon
	// ScenarioISPRefusing blocks intercepted resolvers with REFUSED.
	ScenarioISPRefusing = homelab.ISPRefusing
	// ScenarioISPMixed blocks some resolvers and resolves others.
	ScenarioISPMixed = homelab.ISPMixed
	// ScenarioBeyondISP intercepts in transit, outside the client AS.
	ScenarioBeyondISP = homelab.BeyondISP
	// ScenarioCPESelective intercepts only Google's IPv4 addresses.
	ScenarioCPESelective = homelab.CPESelective
	// ScenarioCPEChaosRelay reproduces §6's documented misclassification.
	ScenarioCPEChaosRelay = homelab.CPEChaosRelay
	// ScenarioReplicating duplicates queries instead of diverting them.
	ScenarioReplicating = homelab.Replicating
)

// AllScenarios lists every built-in scenario.
var AllScenarios = homelab.AllScenarios

// NewSimHome builds a simulated home for a scenario.
func NewSimHome(s Scenario) *SimHome { return homelab.New(s) }

// ExpectedVerdict returns the verdict the technique reaches for a
// scenario — including the §6 misclassification, which is documented
// rather than hidden.
func ExpectedVerdict(s Scenario) Verdict { return homelab.ExpectedVerdict(s) }
