package dnsloc

import (
	"errors"
	"io"
	"net"
	"os"
	"syscall"
	"testing"

	"github.com/dnswatch/dnsloc/internal/core"
	"github.com/dnswatch/dnsloc/internal/dnswire"
)

// opErr wraps a syscall errno the way the net package surfaces it, so
// the classifiers are exercised against realistic error chains rather
// than bare errnos.
func opErr(op string, errno syscall.Errno) error {
	return &net.OpError{Op: op, Net: "tcp", Err: os.NewSyscallError(op, errno)}
}

// TestClassifyTCPDialError pins the dial-failure classification the
// retry policy depends on: refusal and timeout are transient, an
// unreachable network is permanent (ErrNoRoute), and nothing collapses
// into ErrTimeout by default anymore.
func TestClassifyTCPDialError(t *testing.T) {
	cases := []struct {
		name string
		err  error
		want error
	}{
		{"refused", opErr("connect", syscall.ECONNREFUSED), core.ErrRefused},
		{"net-unreachable", opErr("connect", syscall.ENETUNREACH), core.ErrNoRoute},
		{"host-unreachable", opErr("connect", syscall.EHOSTUNREACH), core.ErrNoRoute},
		{"addr-not-avail", opErr("connect", syscall.EADDRNOTAVAIL), core.ErrNoRoute},
		{"dial-timeout", &net.OpError{Op: "dial", Net: "tcp", Err: os.ErrDeadlineExceeded}, core.ErrTimeout},
		{"unknown", errors.New("socket: too many open files"), core.ErrNoRoute},
	}
	for _, tc := range cases {
		if got := classifyTCPDialError(tc.err); !errors.Is(got, tc.want) {
			t.Errorf("%s: classifyTCPDialError(%v) = %v, want %v", tc.name, tc.err, got, tc.want)
		}
	}
}

// TestClassifyTCPReadError pins the framed-read classification: only a
// deadline expiry is a timeout; a short or unparseable frame is
// garbage — the middlebox evidence the detector keys on.
func TestClassifyTCPReadError(t *testing.T) {
	cases := []struct {
		name string
		err  error
		want error
	}{
		{"deadline", &net.OpError{Op: "read", Net: "tcp", Err: os.ErrDeadlineExceeded}, core.ErrTimeout},
		{"eof-before-prefix", io.EOF, core.ErrGarbage},
		{"eof-mid-frame", io.ErrUnexpectedEOF, core.ErrGarbage},
		{"reset", opErr("read", syscall.ECONNRESET), core.ErrGarbage},
		{"refused", opErr("read", syscall.ECONNREFUSED), core.ErrRefused},
		{"parse-failure", errors.New("dnswire: message too short"), core.ErrGarbage},
	}
	for _, tc := range cases {
		if got := classifyTCPReadError(tc.err); !errors.Is(got, tc.want) {
			t.Errorf("%s: classifyTCPReadError(%v) = %v, want %v", tc.name, tc.err, got, tc.want)
		}
	}
}

// TestAnyTruncated covers the fallback trigger over multi-response
// windows.
func TestAnyTruncated(t *testing.T) {
	tc := func(truncated ...bool) []*dnswire.Message {
		var out []*dnswire.Message
		for _, tr := range truncated {
			m := &dnswire.Message{}
			m.Header.Truncated = tr
			out = append(out, m)
		}
		return out
	}
	if anyTruncated(nil) {
		t.Error("anyTruncated(nil) = true")
	}
	if anyTruncated(tc(false, false)) {
		t.Error("anyTruncated with no TC bits = true")
	}
	if !anyTruncated(tc(false, true)) {
		t.Error("anyTruncated missed a TC bit on the second response")
	}
	if !anyTruncated(tc(true)) {
		t.Error("anyTruncated missed a TC bit on the only response")
	}
}
