package dnsloc_test

import (
	"errors"
	"testing"
	"time"

	dnsloc "github.com/dnswatch/dnsloc"
	"github.com/dnswatch/dnsloc/internal/core"
	"github.com/dnswatch/dnsloc/internal/metrics"
)

// TestUDPClientMetricsRecordEveryAttempt is the regression test for the
// retransmit accounting fix: a dropped-then-answered exchange must show
// up as TWO attempts and TWO duration samples, not one. Before the fix
// only the answered attempt reached the instruments, which made packet
// loss invisible in the attempt histogram.
func TestUDPClientMetricsRecordEveryAttempt(t *testing.T) {
	srv := startDroppyDNS(t, 1)
	defer srv.close()

	reg := metrics.New()
	c := dnsloc.NewUDPClient(2 * time.Second)
	c.Window = 0
	c.Retry = &core.RetryPolicy{
		MaxAttempts:    3,
		AttemptTimeout: 150 * time.Millisecond,
		Backoff:        5 * time.Millisecond,
		JitterSeed:     3,
	}
	c.Metrics = dnsloc.NewClientMetrics(reg)

	q := dnsloc.NewVersionBindQuery(41)
	if _, _, err := c.ExchangeRTT(srv.addrPort, q); err != nil {
		t.Fatalf("exchange with retransmission: %v", err)
	}

	if got := c.Metrics.Exchanges.Value(); got != 1 {
		t.Errorf("exchanges = %d, want 1", got)
	}
	// Attempt 1 was swallowed by the server, attempt 2 answered.
	if got := c.Metrics.Attempts.Value(); got != 2 {
		t.Errorf("attempts = %d, want 2 (dropped + answered)", got)
	}
	if got := c.Metrics.AttemptRTT.Count(); got != 2 {
		t.Errorf("attempt histogram count = %d, want one sample per attempt", got)
	}
	// The dropped attempt burned ~AttemptTimeout; its sample keeps the
	// histogram sum well above what the answered loopback attempt alone
	// (sub-millisecond) could produce.
	if sum := c.Metrics.AttemptRTT.Sum(); sum < 100 {
		t.Errorf("attempt histogram sum = %dms, want >= 100ms including the timed-out attempt", sum)
	}
}

// TestUDPClientMetricsTimeoutPath: an exchange where every attempt dies
// still records every attempt.
func TestUDPClientMetricsTimeoutPath(t *testing.T) {
	srv := startDroppyDNS(t, 100) // swallow everything
	defer srv.close()

	reg := metrics.New()
	c := dnsloc.NewUDPClient(500 * time.Millisecond)
	c.Window = 0
	c.Retry = &core.RetryPolicy{MaxAttempts: 2, AttemptTimeout: 100 * time.Millisecond}
	c.Metrics = dnsloc.NewClientMetrics(reg)

	q := dnsloc.NewVersionBindQuery(42)
	if _, _, err := c.ExchangeRTT(srv.addrPort, q); !errors.Is(err, core.ErrTimeout) {
		t.Fatalf("err = %v, want ErrTimeout", err)
	}
	if got := c.Metrics.Attempts.Value(); got != 2 {
		t.Errorf("attempts = %d, want 2", got)
	}
	if got := c.Metrics.AttemptRTT.Count(); got != 2 {
		t.Errorf("attempt histogram count = %d, want 2", got)
	}
}

// TestUDPClientNilMetrics: the hook must cost nothing when unwired.
func TestUDPClientNilMetrics(t *testing.T) {
	srv := startDroppyDNS(t, 0)
	defer srv.close()

	c := dnsloc.NewUDPClient(time.Second)
	c.Window = 0
	q := dnsloc.NewVersionBindQuery(43)
	if _, _, err := c.ExchangeRTT(srv.addrPort, q); err != nil {
		t.Fatalf("exchange with nil metrics: %v", err)
	}
	if dnsloc.NewClientMetrics(nil) != nil {
		t.Error("NewClientMetrics(nil) should return nil")
	}
}
