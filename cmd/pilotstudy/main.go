// Command pilotstudy regenerates every table and figure of the paper's
// evaluation (§4) from the simulated RIPE-Atlas-like platform:
//
//	pilotstudy                  # everything, at full paper scale
//	pilotstudy -table 4         # just Table 4
//	pilotstudy -figure 3        # just Figure 3
//	pilotstudy -scale 0.1       # a 1,000-probe quick run
//	pilotstudy -workers 8       # shard the sweep over 8 cores
//	pilotstudy -csv             # machine-readable Table 4
//	pilotstudy -accuracy        # ground-truth scoring of the technique
//	pilotstudy -faults          # resilience sweep under injected faults
//	pilotstudy -metrics         # print the run's full metric snapshot
//	pilotstudy -metrics-json f  # write the deterministic snapshot ("-" = stdout)
//	pilotstudy -pprof p         # capture p.cpu / p.heap profiles of the sweep
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"time"

	"github.com/dnswatch/dnsloc/internal/analysis"
	"github.com/dnswatch/dnsloc/internal/core"
	"github.com/dnswatch/dnsloc/internal/study"
)

func main() {
	var (
		scale    = flag.Float64("scale", 1.0, "study scale factor (1.0 = ~10,000 probes)")
		seed     = flag.Int64("seed", 0, "override the spec's deterministic seed")
		workers  = flag.Int("workers", 0, "parallel study shards (0 = all cores); output is identical at any count")
		table    = flag.Int("table", 0, "print only this table (1-5)")
		figure   = flag.Int("figure", 0, "print only this figure (3-4)")
		csv      = flag.Bool("csv", false, "emit Table 4 as CSV")
		jsonOut  = flag.String("json", "", "write the full per-probe results as JSON to this file")
		accuracy = flag.Bool("accuracy", false, "also print ground-truth accuracy scoring")
		ext      = flag.String("ext", "", "extension experiment: 'ttl' (hop ladders), 'patterns' (§4.1.1 families), or 'population' (platform bias)")
		faults   = flag.Bool("faults", false, "run the resilience sweep: verdict accuracy vs injected fault level")

		showMetrics = flag.Bool("metrics", false, "print the full metric snapshot (stable + diagnostic) after the run")
		metricsJSON = flag.String("metrics-json", "", "write the deterministic (stable-only) metric snapshot as JSON to this file; '-' for stdout")
		pprofPrefix = flag.String("pprof", "", "capture CPU and heap profiles of the sweep to <prefix>.cpu and <prefix>.heap")
	)
	flag.Parse()

	// Tables 1-3 need no study run.
	if *table == 1 {
		fmt.Println(analysis.FormatTable1())
		return
	}
	if *table == 2 || *table == 3 {
		rows := study.ExampleScenario()
		if *table == 2 {
			fmt.Println(analysis.FormatTable2(rows))
		} else {
			fmt.Println(analysis.FormatTable3(rows))
		}
		return
	}

	spec := study.PaperSpec()
	if *scale != 1.0 {
		spec = spec.Scale(*scale)
	}
	if *seed != 0 {
		spec.Seed = *seed
	}
	nWorkers := *workers
	if nWorkers <= 0 {
		nWorkers = runtime.GOMAXPROCS(0)
	}

	if *faults {
		levels := []float64{0, 0.25, 0.5, 0.75, 1.0}
		retry := &core.RetryPolicy{MaxAttempts: 3}
		fmt.Fprintf(os.Stderr, "resilience sweep: %d probes x %d fault levels, %d worker(s)...\n",
			spec.TotalProbes, len(levels), nWorkers)
		start := time.Now()
		rows := analysis.RunResilienceSweep(spec, study.EngineOptions{Workers: nWorkers}, levels, retry)
		fmt.Fprintf(os.Stderr, "sweep complete in %v\n", time.Since(start).Round(time.Millisecond))
		fmt.Println(analysis.FormatResilience(rows))
		return
	}

	fmt.Fprintf(os.Stderr, "building world: %d probes, %d interception seats, %d worker(s)...\n",
		spec.TotalProbes, spec.TotalSeats(), nWorkers)
	if *pprofPrefix != "" {
		f, err := os.Create(*pprofPrefix + ".cpu")
		if err != nil {
			fmt.Fprintf(os.Stderr, "pilotstudy: creating cpu profile: %v\n", err)
			os.Exit(1)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintf(os.Stderr, "pilotstudy: starting cpu profile: %v\n", err)
			os.Exit(1)
		}
		defer f.Close()
	}
	start := time.Now()
	results := study.RunSharded(spec, study.EngineOptions{
		Workers: nWorkers,
		Progress: func(shard, workers, probes int, elapsed time.Duration) {
			fmt.Fprintf(os.Stderr, "shard %d/%d: %d probes measured in %v\n",
				shard+1, workers, probes, elapsed.Round(time.Millisecond))
		},
	})
	if *pprofPrefix != "" {
		pprof.StopCPUProfile()
		if f, err := os.Create(*pprofPrefix + ".heap"); err == nil {
			runtime.GC()
			pprof.WriteHeapProfile(f) //nolint:errcheck
			f.Close()
			fmt.Fprintf(os.Stderr, "wrote %s.cpu and %s.heap\n", *pprofPrefix, *pprofPrefix)
		} else {
			fmt.Fprintf(os.Stderr, "pilotstudy: creating heap profile: %v\n", err)
		}
	}
	fmt.Fprintf(os.Stderr, "study complete: %d probes in %v\n",
		len(results.Records), time.Since(start).Round(time.Millisecond))

	if *metricsJSON != "" {
		blob := results.MetricsSnapshot(false).JSON()
		if *metricsJSON == "-" {
			os.Stdout.Write(blob) //nolint:errcheck
		} else if err := os.WriteFile(*metricsJSON, blob, 0o644); err != nil {
			fmt.Fprintf(os.Stderr, "pilotstudy: writing %s: %v\n", *metricsJSON, err)
			os.Exit(1)
		} else {
			fmt.Fprintf(os.Stderr, "wrote %s\n", *metricsJSON)
		}
	}

	if *jsonOut != "" {
		blob, err := json.MarshalIndent(results, "", "  ")
		if err != nil {
			fmt.Fprintf(os.Stderr, "pilotstudy: encoding json: %v\n", err)
			os.Exit(1)
		}
		if err := os.WriteFile(*jsonOut, blob, 0o644); err != nil {
			fmt.Fprintf(os.Stderr, "pilotstudy: writing %s: %v\n", *jsonOut, err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "wrote %s\n", *jsonOut)
	}

	t4 := analysis.BuildTable4(results)
	switch {
	case *csv:
		// CSV replaces the rendered tables but must not short-circuit
		// -accuracy or -ext below.
		fmt.Print(analysis.CSVTable4(t4))
	case *table == 4:
		fmt.Println(analysis.FormatTable4(t4))
	case *table == 5:
		fmt.Println(analysis.FormatTable5(analysis.BuildTable5(results)))
	case *figure == 3:
		fmt.Println(analysis.FormatFigure3(analysis.BuildFigure3(results, 15)))
	case *figure == 4:
		fmt.Println(analysis.FormatFigure4(analysis.BuildFigure4(results, 15)))
	default:
		fmt.Println(analysis.FormatTable1())
		rows := study.ExampleScenario()
		fmt.Println(analysis.FormatTable2(rows))
		fmt.Println(analysis.FormatTable3(rows))
		fmt.Println(analysis.FormatTable4(t4))
		fmt.Println(analysis.FormatTable5(analysis.BuildTable5(results)))
		fmt.Println(analysis.FormatFigure3(analysis.BuildFigure3(results, 15)))
		fmt.Println(analysis.FormatFigure4(analysis.BuildFigure4(results, 15)))
	}
	if *accuracy {
		fmt.Println(analysis.FormatAccuracy(analysis.BuildAccuracy(results)))
	}
	if *showMetrics {
		fmt.Println("== Run metrics ==")
		fmt.Print(results.MetricsSnapshot(true).Text())
	}
	switch *ext {
	case "ttl":
		fmt.Fprintf(os.Stderr, "running TTL ladders from intercepted probes...\n")
		stats := study.RunTTLExtension(results, 50, 10)
		fmt.Println(analysis.FormatTTLExtension(stats))
	case "patterns":
		fmt.Println(analysis.FormatPatternBreakdown(analysis.BuildPatternBreakdown(results, "IPv4")))
		fmt.Println(analysis.FormatPatternBreakdown(analysis.BuildPatternBreakdown(results, "IPv6")))
	case "population":
		fmt.Println(analysis.FormatPopulation(analysis.BuildPopulation(results)))
	}
}
