// Command pilotstudy regenerates every table and figure of the paper's
// evaluation (§4) from the simulated RIPE-Atlas-like platform:
//
//	pilotstudy                  # everything, at full paper scale
//	pilotstudy -table 4         # just Table 4
//	pilotstudy -figure 3        # just Figure 3
//	pilotstudy -scale 0.1       # a 1,000-probe quick run
//	pilotstudy -workers 8       # shard the sweep over 8 cores
//	pilotstudy -csv             # machine-readable Table 4
//	pilotstudy -accuracy        # ground-truth scoring of the technique
//	pilotstudy -faults          # resilience sweep under injected faults
//	pilotstudy -encryption      # DoT/DoH interception-vs-adoption sweep
//	pilotstudy -metrics         # print the run's full metric snapshot
//	pilotstudy -metrics-json f  # write the deterministic snapshot ("-" = stdout)
//	pilotstudy -pprof p         # capture p.cpu / p.heap profiles of the sweep
//	pilotstudy -trace f         # capture a runtime/trace of the sweep to f
//	pilotstudy -stream          # bounded-memory pipeline: fold records, retain none
//	pilotstudy -stream -records p      # also stream per-probe JSONL to p.shardK-of-N.jsonl
//	pilotstudy -stream -checkpoint-dir d       # persist shard checkpoints under d
//	pilotstudy -stream -checkpoint-dir d -resume  # resume a killed run, byte-identical output
//	pilotstudy -torture-seed 20260808 -scale 0.0128  # crash-torture campaign: kill/corrupt/resume cycles
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"runtime/trace"
	"time"

	"github.com/dnswatch/dnsloc/internal/analysis"
	"github.com/dnswatch/dnsloc/internal/core"
	"github.com/dnswatch/dnsloc/internal/dnsserver"
	"github.com/dnswatch/dnsloc/internal/netsim"
	"github.com/dnswatch/dnsloc/internal/render"
	"github.com/dnswatch/dnsloc/internal/study"
)

func main() {
	var (
		scale    = flag.Float64("scale", 1.0, "study scale factor (1.0 = ~10,000 probes)")
		seed     = flag.Int64("seed", 0, "override the spec's deterministic seed")
		workers  = flag.Int("workers", 0, "parallel study shards (0 = all cores); output is identical at any count")
		lanes    = flag.Int("lanes", 0, "probe lanes per shard, each its own event loop over the shared world core; output is identical at any count (in-memory: 0 = auto from spare cores; -stream: 0 = 1, and checkpoints move to lane boundaries; torture: 0 = varied per cycle)")
		table    = flag.Int("table", 0, "print only this table (1-5)")
		figure   = flag.Int("figure", 0, "print only this figure (3-4)")
		csv      = flag.Bool("csv", false, "emit Table 4 as CSV")
		jsonOut  = flag.String("json", "", "write the full per-probe results as JSON to this file")
		accuracy = flag.Bool("accuracy", false, "also print ground-truth accuracy scoring")
		ext      = flag.String("ext", "", "extension experiment: 'ttl' (hop ladders), 'patterns' (§4.1.1 families), or 'population' (platform bias)")
		faults   = flag.Bool("faults", false, "run the resilience sweep: verdict accuracy vs injected fault level (with -encryption: run the encryption sweep under a mid-level fault plane instead)")
		advSweep = flag.Bool("adversary", false, "run the adversary sweep: detection accuracy vs interceptor evasion level (L0-L4), CHAOS-only vs chaos+cert+drift fusion")
		encSweep = flag.Bool("encryption", false, "run the encryption sweep: interception rate and detection accuracy vs DoT/DoH adoption fraction, client profile, and middlebox policy")

		showMetrics = flag.Bool("metrics", false, "print the full metric snapshot (stable + diagnostic) after the run")
		metricsJSON = flag.String("metrics-json", "", "write the deterministic (stable-only) metric snapshot as JSON to this file; '-' for stdout")
		pprofPrefix = flag.String("pprof", "", "capture CPU and heap profiles of the sweep to <prefix>.cpu and <prefix>.heap")
		tracePath   = flag.String("trace", "", "capture a runtime/trace of the sweep to this file (go tool trace <file>)")

		stream     = flag.Bool("stream", false, "streaming bounded-memory pipeline: fold each record into the aggregates on completion instead of retaining it; output is byte-identical to the in-memory pipeline")
		recordsOut = flag.String("records", "", "(with -stream) stream per-probe records as JSONL to <prefix>.shardK-of-N.jsonl, one file per shard")
		ckptDir    = flag.String("checkpoint-dir", "", "(with -stream) persist per-shard checkpoints under this directory")
		ckptEvery  = flag.Int("checkpoint-every", 1000, "(with -stream -checkpoint-dir) records per checkpoint")
		resume     = flag.Bool("resume", false, "(with -stream -checkpoint-dir) resume from the directory's checkpoints; the finished run is byte-identical to an uninterrupted one")
		stopAfter  = flag.Int("stop-after", 0, "(with -stream) halt each shard after this many records without a final checkpoint — simulates a mid-flight kill for checkpoint testing")

		tortureSeed   = flag.Int64("torture-seed", 0, "run the crash-torture campaign with this fault-schedule seed: repeated kill/corrupt/resume cycles whose final output must be byte-identical to an undisturbed run (reproduces the CI crash-torture job locally)")
		tortureCycles = flag.Int("torture-cycles", 0, "(with -torture-seed) kill/corrupt/resume cycles to run (0 = 30)")
	)
	flag.Parse()

	if *stream {
		if *jsonOut != "" || *ext != "" || *faults || *advSweep || *encSweep {
			fmt.Fprintln(os.Stderr, "pilotstudy: -stream retains no records; -json, -ext, -faults, -adversary, and -encryption need the in-memory pipeline (use -records for streamed per-probe output)")
			os.Exit(2)
		}
	} else {
		for flagName, set := range map[string]bool{
			"-records": *recordsOut != "", "-checkpoint-dir": *ckptDir != "",
			"-resume": *resume, "-stop-after": *stopAfter > 0,
		} {
			if set {
				fmt.Fprintf(os.Stderr, "pilotstudy: %s requires -stream\n", flagName)
				os.Exit(2)
			}
		}
	}
	if *resume && *ckptDir == "" {
		fmt.Fprintln(os.Stderr, "pilotstudy: -resume requires -checkpoint-dir")
		os.Exit(2)
	}

	// Tables 1-3 need no study run.
	if *table == 1 {
		fmt.Println(analysis.FormatTable1())
		return
	}
	if *table == 2 || *table == 3 {
		rows := study.ExampleScenario()
		if *table == 2 {
			fmt.Println(analysis.FormatTable2(rows))
		} else {
			fmt.Println(analysis.FormatTable3(rows))
		}
		return
	}

	spec := study.PaperSpec()
	if *scale != 1.0 {
		spec = spec.Scale(*scale)
	}
	if *seed != 0 {
		spec.Seed = *seed
	}
	nWorkers := *workers
	if nWorkers <= 0 {
		nWorkers = runtime.GOMAXPROCS(0)
	}

	if *tortureSeed != 0 {
		runTorture(spec, nWorkers, *lanes, *tortureSeed, *tortureCycles)
		return
	}
	if *tortureCycles != 0 {
		fmt.Fprintln(os.Stderr, "pilotstudy: -torture-cycles requires -torture-seed")
		os.Exit(2)
	}

	if *faults && !*encSweep {
		levels := []float64{0, 0.25, 0.5, 0.75, 1.0}
		retry := &core.RetryPolicy{MaxAttempts: 3}
		fmt.Fprintf(os.Stderr, "resilience sweep: %d probes x %d fault levels, %d worker(s)...\n",
			spec.TotalProbes, len(levels), nWorkers)
		start := time.Now()
		rows := analysis.RunResilienceSweep(spec, study.EngineOptions{Workers: nWorkers, Lanes: *lanes}, levels, retry)
		fmt.Fprintf(os.Stderr, "sweep complete in %v\n", time.Since(start).Round(time.Millisecond))
		fmt.Println(analysis.FormatResilience(rows))
		return
	}

	if *advSweep {
		levels := []int{0, 1, 2, 3, 4}
		fmt.Fprintf(os.Stderr, "adversary sweep: %d probes x %d evasion levels, %d worker(s)...\n",
			spec.TotalProbes, len(levels), nWorkers)
		start := time.Now()
		rows := analysis.RunAdversarySweep(spec, study.EngineOptions{Workers: nWorkers, Lanes: *lanes}, levels, nil)
		fmt.Fprintf(os.Stderr, "sweep complete in %v\n", time.Since(start).Round(time.Millisecond))
		fmt.Println(analysis.FormatAdversary(rows))
		return
	}

	if *encSweep {
		adoptions := []float64{0, 0.5, 1.0}
		transports := []core.TransportMode{
			core.TransportDoTOpportunistic, core.TransportDoTStrict, core.TransportDoH,
		}
		policies := []dnsserver.EncryptedPolicy{
			dnsserver.EncPass, dnsserver.EncBlock, dnsserver.EncTerminate,
		}
		// -faults composes: the same grid measured through a mid-level
		// fault plane, with the retry budget the resilience sweep uses.
		var retry *core.RetryPolicy
		if *faults {
			fp := netsim.PresetFault(0.5, spec.Seed+9000)
			spec.Fault = &fp
			retry = &core.RetryPolicy{MaxAttempts: 3}
		}
		cells := len(adoptions) * len(transports) * len(policies)
		fmt.Fprintf(os.Stderr, "encryption sweep: %d probes x %d grid cells, %d worker(s)...\n",
			spec.TotalProbes, cells, nWorkers)
		start := time.Now()
		rows := analysis.RunEncryptionSweep(spec, study.EngineOptions{Workers: nWorkers, Lanes: *lanes},
			adoptions, transports, policies, retry)
		fmt.Fprintf(os.Stderr, "sweep complete in %v\n", time.Since(start).Round(time.Millisecond))
		fmt.Println(analysis.FormatEncryption(rows))
		return
	}

	fmt.Fprintf(os.Stderr, "building world: %d probes, %d interception seats, %d worker(s)...\n",
		spec.TotalProbes, spec.TotalSeats(), nWorkers)
	if *pprofPrefix != "" {
		f, err := os.Create(*pprofPrefix + ".cpu")
		if err != nil {
			fmt.Fprintf(os.Stderr, "pilotstudy: creating cpu profile: %v\n", err)
			os.Exit(1)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintf(os.Stderr, "pilotstudy: starting cpu profile: %v\n", err)
			os.Exit(1)
		}
		defer f.Close()
	}
	if *tracePath != "" {
		f, err := os.Create(*tracePath)
		if err != nil {
			fmt.Fprintf(os.Stderr, "pilotstudy: creating trace file: %v\n", err)
			os.Exit(1)
		}
		if err := trace.Start(f); err != nil {
			fmt.Fprintf(os.Stderr, "pilotstudy: starting trace: %v\n", err)
			os.Exit(1)
		}
		defer f.Close()
	}
	start := time.Now()
	progress := func(shard, workers, probes int, elapsed time.Duration) {
		fmt.Fprintf(os.Stderr, "shard %d/%d: %d probes measured in %v\n",
			shard+1, workers, probes, elapsed.Round(time.Millisecond))
	}
	var (
		results  *study.Results        // in-memory pipeline only; nil with -stream
		acc      *analysis.Accumulator // both pipelines render tables from this
		snap     func(bool) *study.Snapshot
		measured int
		halted   bool
	)
	if *stream {
		opts := study.StreamOptions{
			Workers:         nWorkers,
			Lanes:           *lanes,
			Progress:        progress,
			NewAccumulator:  func(int) study.Accumulator { return analysis.NewAccumulator() },
			CheckpointDir:   *ckptDir,
			CheckpointEvery: *ckptEvery,
			Resume:          *resume,
			StopAfterProbes: *stopAfter,
		}
		if *recordsOut != "" {
			opts.NewSink = jsonlSink(*recordsOut)
		}
		res, err := study.RunStreamed(spec, opts)
		if err != nil {
			fmt.Fprintf(os.Stderr, "pilotstudy: %v\n", err)
			os.Exit(1)
		}
		for _, e := range res.Errors {
			fmt.Fprintf(os.Stderr, "pilotstudy: %s\n", e)
		}
		if len(res.Errors) > 0 {
			os.Exit(1)
		}
		acc = res.Acc.(*analysis.Accumulator)
		snap = res.MetricsSnapshot
		measured = res.Folded + res.Skipped
		halted = res.Stopped
		fmt.Fprint(os.Stderr, render.KV([][2]string{
			{"probes folded", fmt.Sprintf("%d", res.Folded)},
			{"probes resumed from checkpoint", fmt.Sprintf("%d", res.Skipped)},
		}))
	} else {
		results = study.RunSharded(spec, study.EngineOptions{Workers: nWorkers, Lanes: *lanes, Progress: progress})
		acc = analysis.NewAccumulator()
		for _, rec := range results.Records {
			acc.Fold(rec)
		}
		snap = results.MetricsSnapshot
		measured = len(results.Records)
	}
	if *tracePath != "" {
		trace.Stop()
		fmt.Fprintf(os.Stderr, "wrote %s (view with: go tool trace %s)\n", *tracePath, *tracePath)
	}
	if *pprofPrefix != "" {
		pprof.StopCPUProfile()
		if f, err := os.Create(*pprofPrefix + ".heap"); err == nil {
			runtime.GC()
			pprof.WriteHeapProfile(f) //nolint:errcheck
			f.Close()
			fmt.Fprintf(os.Stderr, "wrote %s.cpu and %s.heap\n", *pprofPrefix, *pprofPrefix)
		} else {
			fmt.Fprintf(os.Stderr, "pilotstudy: creating heap profile: %v\n", err)
		}
	}
	fmt.Fprintf(os.Stderr, "study complete: %d probes in %v\n",
		measured, time.Since(start).Round(time.Millisecond))
	if halted {
		// A simulated kill: the tables would be partial, so don't render
		// them — the run exists only to leave checkpoints behind.
		fmt.Fprintf(os.Stderr, "halted by -stop-after; resume with -stream -checkpoint-dir %s -resume\n", *ckptDir)
		return
	}

	if *metricsJSON != "" {
		blob := snap(false).JSON()
		if *metricsJSON == "-" {
			os.Stdout.Write(blob) //nolint:errcheck
		} else if err := os.WriteFile(*metricsJSON, blob, 0o644); err != nil {
			fmt.Fprintf(os.Stderr, "pilotstudy: writing %s: %v\n", *metricsJSON, err)
			os.Exit(1)
		} else {
			fmt.Fprintf(os.Stderr, "wrote %s\n", *metricsJSON)
		}
	}

	if *jsonOut != "" {
		blob, err := json.MarshalIndent(results, "", "  ")
		if err != nil {
			fmt.Fprintf(os.Stderr, "pilotstudy: encoding json: %v\n", err)
			os.Exit(1)
		}
		if err := os.WriteFile(*jsonOut, blob, 0o644); err != nil {
			fmt.Fprintf(os.Stderr, "pilotstudy: writing %s: %v\n", *jsonOut, err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "wrote %s\n", *jsonOut)
	}

	// Both pipelines render from the accumulator: the slice-based Build*
	// functions are wrappers over the same fold, so the bytes match the
	// pre-streaming output exactly.
	t4 := acc.Table4()
	switch {
	case *csv:
		// CSV replaces the rendered tables but must not short-circuit
		// -accuracy or -ext below.
		fmt.Print(analysis.CSVTable4(t4))
	case *table == 4:
		fmt.Println(analysis.FormatTable4(t4))
	case *table == 5:
		fmt.Println(analysis.FormatTable5(acc.Table5()))
	case *figure == 3:
		fmt.Println(analysis.FormatFigure3(acc.Figure3(15)))
	case *figure == 4:
		fmt.Println(analysis.FormatFigure4(acc.Figure4(15)))
	default:
		fmt.Println(analysis.FormatTable1())
		rows := study.ExampleScenario()
		fmt.Println(analysis.FormatTable2(rows))
		fmt.Println(analysis.FormatTable3(rows))
		fmt.Println(analysis.FormatTable4(t4))
		fmt.Println(analysis.FormatTable5(acc.Table5()))
		fmt.Println(analysis.FormatFigure3(acc.Figure3(15)))
		fmt.Println(analysis.FormatFigure4(acc.Figure4(15)))
	}
	if *accuracy {
		fmt.Println(analysis.FormatAccuracy(acc.Accuracy()))
	}
	if *showMetrics {
		fmt.Println("== Run metrics ==")
		fmt.Print(snap(true).Text())
	}
	switch *ext {
	case "ttl":
		fmt.Fprintf(os.Stderr, "running TTL ladders from intercepted probes...\n")
		stats := study.RunTTLExtension(results, 50, 10)
		fmt.Println(analysis.FormatTTLExtension(stats))
	case "patterns":
		fmt.Println(analysis.FormatPatternBreakdown(analysis.BuildPatternBreakdown(results, "IPv4")))
		fmt.Println(analysis.FormatPatternBreakdown(analysis.BuildPatternBreakdown(results, "IPv6")))
	case "population":
		fmt.Println(analysis.FormatPopulation(analysis.BuildPopulation(results)))
	}
}

// runTorture drives the randomized crash-torture campaign: an
// undisturbed reference run, then repeated kill/corrupt/resume cycles
// on fault-injected filesystems, ending with a byte-level diff of the
// tables, Stable metrics, and sink files. Exits non-zero on any
// divergence or fatal abort.
func runTorture(spec study.Spec, workers, lanes int, seed int64, cycles int) {
	dir, err := os.MkdirTemp("", "pilotstudy-torture-")
	if err != nil {
		fmt.Fprintf(os.Stderr, "pilotstudy: %v\n", err)
		os.Exit(1)
	}
	defer os.RemoveAll(dir)
	fmt.Fprintf(os.Stderr, "crash-torture: %d probes, %d workers, seed %d, scratch %s\n",
		spec.TotalProbes, workers, seed, dir)
	start := time.Now()
	rep, err := study.RunTorture(study.TortureOptions{
		Spec:           spec,
		Workers:        workers,
		Lanes:          lanes,
		Cycles:         cycles,
		Seed:           seed,
		Dir:            dir,
		NewAccumulator: func(int) study.Accumulator { return analysis.NewAccumulator() },
		Render: func(res *study.StreamResults) string {
			acc := res.Acc.(*analysis.Accumulator)
			t4 := acc.Table4()
			return analysis.FormatTable4(t4) + analysis.CSVTable4(t4) +
				analysis.FormatTable5(acc.Table5()) +
				analysis.FormatFigure3(acc.Figure3(10)) +
				analysis.FormatFigure4(acc.Figure4(10)) +
				analysis.FormatAccuracy(acc.Accuracy()) +
				string(res.MetricsSnapshot(false).JSON())
		},
		Warnf: func(format string, args ...any) {
			fmt.Fprintf(os.Stderr, "crash-torture: "+format+"\n", args...)
		},
	})
	if err != nil {
		fmt.Fprintf(os.Stderr, "pilotstudy: torture campaign aborted: %v\n", err)
		os.Exit(1)
	}
	fmt.Println(rep.Summary())
	fmt.Fprintf(os.Stderr, "crash-torture complete in %v\n", time.Since(start).Round(time.Millisecond))
	if !rep.Passed() {
		fmt.Fprintf(os.Stderr, "pilotstudy: tortured run DIVERGED from undisturbed run:\n%s\n", rep.Diff)
		os.Exit(1)
	}
}

// jsonlSink opens per-shard JSONL record sinks under the given path
// prefix. On resume the shard's file is truncated back to its
// checkpoint cursor (dropping records written after the last checkpoint
// and any partial line the kill left) and reopened in append mode, so
// the finished file is byte-identical to an uninterrupted run's.
func jsonlSink(prefix string) func(k, workers, resumedAt int) (study.RecordSink, error) {
	return func(k, workers, resumedAt int) (study.RecordSink, error) {
		path := fmt.Sprintf("%s.shard%d-of-%d.jsonl", prefix, k, workers)
		if err := study.TruncateSinkFile(path, resumedAt, false); err != nil {
			return nil, err
		}
		f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			return nil, err
		}
		return study.NewJSONLSink(f), nil
	}
}
