// Command xb6lab reproduces the paper's §5 case study: an
// Arris/Technicolor XB6 home router whose RDK-B/XDNS firewall DNATs all
// LAN port-53 traffic to its own forwarder and on to the ISP resolver.
//
// It builds the simulated home, captures every packet of one DNS
// exchange (the simulator's tcpdump), annotates the DNAT rewrite and
// the spoofed response, then runs the full localization technique and,
// for contrast, repeats the exchange through a well-behaved router —
// "replacing these CPE devices sometimes suffices" (§7).
package main

import (
	"flag"
	"fmt"
	"net/netip"
	"strings"

	dnsloc "github.com/dnswatch/dnsloc"
	"github.com/dnswatch/dnsloc/internal/dnswire"
	"github.com/dnswatch/dnsloc/internal/homelab"
	"github.com/dnswatch/dnsloc/internal/netsim"
	"github.com/dnswatch/dnsloc/internal/trace"
)

func main() {
	verbose := flag.Bool("v", false, "show every packet event, not just the interception-relevant ones")
	flag.Parse()

	fmt.Println("=== XB6 case study: one A query for google.com to 8.8.8.8 ===")
	fmt.Println()
	runCapture(homelab.XB6, *verbose)

	fmt.Println()
	fmt.Println("=== Localization technique against the XB6 home ===")
	fmt.Println()
	lab := homelab.New(homelab.XB6)
	report := lab.Detector().Run()
	fmt.Print(report)

	fmt.Println()
	fmt.Println("=== Same exchange through a well-behaved router ===")
	fmt.Println()
	runCapture(homelab.Clean, *verbose)
}

// runCapture sends one query through a scenario home with a capture
// attached (the simulator's tcpdump, internal/trace).
func runCapture(s homelab.Scenario, verbose bool) {
	lab := homelab.New(s)
	filter := trace.Or(
		trace.NATEvents,
		trace.Kind(netsim.TraceDeliver, netsim.TraceDrop),
	)
	if verbose {
		filter = trace.All
	}
	capture := trace.New(lab.Net, filter, 0)

	query := dnswire.NewQuery(4242, "google.com", dnswire.TypeA, dnswire.ClassINET)
	resps, err := lab.Probe.Exchange(lab.Net,
		netip.AddrPortFrom(netip.MustParseAddr("8.8.8.8"), 53),
		dnswire.MustPack(query), netsim.ExchangeOptions{})
	if err != nil {
		fmt.Printf("  exchange failed: %v\n", err)
		return
	}
	for _, line := range strings.Split(strings.TrimRight(capture.String(), "\n"), "\n") {
		fmt.Println("  " + line)
	}
	m, err := dnswire.Unpack(resps[0].Payload)
	if err != nil {
		fmt.Printf("  bad response: %v\n", err)
		return
	}
	fmt.Println()
	fmt.Printf("  response source: %s (what the client believes)\n", resps[0].Src)
	if addrs := m.AnswerAddrs(); len(addrs) > 0 {
		fmt.Printf("  google.com resolved to: %v\n", addrs)
	}
	vb := dnsloc.NewVersionBindQuery(4243)
	vbResps, err := lab.Probe.Exchange(lab.Net,
		netip.AddrPortFrom(lab.Home.WANv4, 53),
		dnswire.MustPack(vb), netsim.ExchangeOptions{})
	if err != nil {
		fmt.Printf("  version.bind @ CPE public IP: timeout (%s)\n", err)
		return
	}
	vbm, _ := dnswire.Unpack(vbResps[0].Payload)
	if s, ok := vbm.FirstTXT(); ok {
		fmt.Printf("  version.bind @ CPE public IP: %q  <- the forwarder answering for everyone\n", s)
	} else {
		fmt.Printf("  version.bind @ CPE public IP: %s\n", vbm.Header.RCode)
	}
}
