// Command dnsloc runs the interception-localization technique, either
// against the real network this machine sits on, or inside a simulated
// home for demonstration:
//
//	dnsloc -real -cpe-ip 203.0.113.7      # probe the live network
//	dnsloc -sim xb6                       # simulate an XB6 home
//	dnsloc -sim clean -v6=false
//	dnsloc -list                          # list simulation scenarios
//
// The real mode issues exactly the queries the paper describes: location
// queries to Cloudflare/Google/Quad9/OpenDNS, version.bind to the CPE's
// public address, and bogon queries — no root privileges required.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"net/netip"
	"os"
	"strings"
	"time"

	dnsloc "github.com/dnswatch/dnsloc"
)

func main() {
	var (
		real    = flag.Bool("real", false, "probe the real network instead of a simulation")
		sim     = flag.String("sim", "clean", "simulation scenario (see -list)")
		list    = flag.Bool("list", false, "list simulation scenarios and exit")
		cpeIP   = flag.String("cpe-ip", "", "the CPE's public IPv4 address (real mode; enables the CPE test)")
		v6      = flag.Bool("v6", true, "also test the resolvers' IPv6 addresses")
		timeout = flag.Duration("timeout", 3*time.Second, "per-query timeout (real mode)")
		only    = flag.String("resolvers", "", "comma-separated subset: cloudflare,google,quad9,opendns")
		explain = flag.Bool("explain", false, "narrate the decision path, not just the evidence")
		doTrace = flag.Bool("trace", false, "also run a DNS traceroute to Google (simulation only)")
		asJSON  = flag.Bool("json", false, "emit the report as JSON")
		retries = flag.Int("retries", 1, "per-query retries on timeout")
	)
	flag.Parse()

	if *list {
		for _, s := range dnsloc.AllScenarios {
			fmt.Printf("%-24s -> %s\n", s, dnsloc.ExpectedVerdict(s))
		}
		return
	}

	var det *dnsloc.Detector
	if *real {
		det = &dnsloc.Detector{
			Client:  dnsloc.NewUDPClient(*timeout),
			QueryV6: *v6,
		}
		if *cpeIP != "" {
			addr, err := netip.ParseAddr(*cpeIP)
			if err != nil || !addr.Is4() {
				fmt.Fprintf(os.Stderr, "dnsloc: -cpe-ip must be an IPv4 address: %v\n", err)
				os.Exit(2)
			}
			det.CPEPublicV4 = addr
		} else {
			fmt.Fprintln(os.Stderr, "dnsloc: no -cpe-ip given; the CPE test (step 2) will be skipped")
		}
	} else {
		lab := dnsloc.NewSimHome(dnsloc.Scenario(*sim))
		det = lab.Detector()
		det.QueryV6 = *v6
		fmt.Printf("simulated home scenario: %s\n\n", *sim)
		if *doTrace {
			tr, err := lab.Traceroute()
			if err != nil {
				fmt.Fprintf(os.Stderr, "dnsloc: traceroute: %v\n", err)
			} else {
				fmt.Println(tr)
			}
		}
	}
	if *real && *doTrace {
		fmt.Fprintln(os.Stderr, "dnsloc: -trace needs TTL control (root); available in simulation only")
	}

	if *only != "" {
		for _, name := range strings.Split(*only, ",") {
			det.Resolvers = append(det.Resolvers, dnsloc.ResolverID(strings.TrimSpace(name)))
		}
	}

	det.Retries = *retries
	report := det.Run()
	switch {
	case *asJSON:
		blob, err := json.MarshalIndent(report, "", "  ")
		if err != nil {
			fmt.Fprintf(os.Stderr, "dnsloc: %v\n", err)
			os.Exit(2)
		}
		fmt.Println(string(blob))
	case *explain:
		fmt.Print(report.Explain())
	default:
		fmt.Print(report)
	}

	switch report.Verdict {
	case dnsloc.VerdictNotIntercepted:
		os.Exit(0)
	default:
		os.Exit(1) // interception detected
	}
}
