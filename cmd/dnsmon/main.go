// Command dnsmon monitors a network for DNS interception: it reruns the
// localization technique on an interval and reports verdict changes —
// the continuous monitoring the paper's conclusion motivates ("...can
// be more closely monitored by using our work"), catching events like a
// CPE firmware update that silently enables XDNS-style redirection.
//
//	dnsmon -real -cpe-ip 203.0.113.7 -interval 1h
//	dnsmon -sim xb6 -count 3 -interval 0      # offline demo: 3 rounds
//
// Output is one line per round; verdict transitions are marked. Exit
// code 1 if any round observed interception.
package main

import (
	"flag"
	"fmt"
	"net/netip"
	"os"
	"time"

	dnsloc "github.com/dnswatch/dnsloc"
)

func main() {
	var (
		real     = flag.Bool("real", false, "monitor the real network instead of a simulation")
		sim      = flag.String("sim", "clean", "simulation scenario")
		cpeIP    = flag.String("cpe-ip", "", "the CPE's public IPv4 address (real mode)")
		interval = flag.Duration("interval", time.Hour, "time between rounds (0 = back-to-back)")
		count    = flag.Int("count", 0, "number of rounds (0 = forever)")
		timeout  = flag.Duration("timeout", 3*time.Second, "per-query timeout (real mode)")
	)
	flag.Parse()

	var det *dnsloc.Detector
	if *real {
		det = &dnsloc.Detector{
			Client:   dnsloc.NewUDPClient(*timeout),
			QueryV6:  true,
			Parallel: true,
			Retries:  1,
		}
		if *cpeIP != "" {
			addr, err := netip.ParseAddr(*cpeIP)
			if err != nil {
				fmt.Fprintf(os.Stderr, "dnsmon: bad -cpe-ip: %v\n", err)
				os.Exit(2)
			}
			det.CPEPublicV4 = addr
		}
	} else {
		lab := dnsloc.NewSimHome(dnsloc.Scenario(*sim))
		det = lab.Detector()
	}

	var last *dnsloc.Report
	sawInterception := false
	for round := 1; *count == 0 || round <= *count; round++ {
		report := det.Run()
		stamp := time.Now().Format(time.RFC3339)
		extra := ""
		if report.CPEString != "" {
			extra = fmt.Sprintf("  fingerprint=%q", report.CPEString)
		}
		fmt.Printf("%s  round=%d  verdict=%q  intercepted=%v%s\n",
			stamp, round, report.Verdict, report.InterceptedSet(), extra)
		for _, change := range report.Diff(last) {
			fmt.Printf("%s  round=%d  ** CHANGE: %s\n", stamp, round, change)
		}
		last = report
		if report.Intercepted() {
			sawInterception = true
		}
		if *count != 0 && round == *count {
			break
		}
		if *interval > 0 {
			time.Sleep(*interval)
		}
	}
	if sawInterception {
		os.Exit(1)
	}
}
